// Package simtest is the golden-digest regression harness for the
// discrete-event simulator and the figure generators built on it. It
// canonically serializes full simulation outcomes — sim.Result with every
// VertexStats and link utilization, the complete packet trace stream, and
// regenerated experiments.Figure tables — into SHA-256 digests, and diffs
// them against digests committed under testdata/.
//
// The digests are the enforcement mechanism behind the event engine's
// determinism contract (docs/SIM.md): any change to the scheduler, the
// event queue, the RNG stream discipline, or the statistics pipeline that
// alters even one bit of one result flips a digest and fails the suite.
// The committed goldens were recorded from the pre-optimization
// container/heap engine, so they prove the specialized 4-ary value-heap
// engine replays the exact event sequence the seed engine produced.
//
// Refreshing goldens after an intentional behavior change:
//
//	go test ./internal/sim ./internal/experiments -run Golden -update
//
// Review the diff of the testdata/*.json files like any other code change:
// a digest that moved without a deliberate semantic change is a bug.
package simtest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lognic/internal/sim"
)

// Update is the shared -update flag: when set, golden checks record the
// observed digest instead of diffing against the committed one. Registered
// here once so every test package importing simtest gets the same flag.
var Update = flag.Bool("update", false, "rewrite golden digest files instead of diffing against them")

// Digester accumulates canonical bytes into a SHA-256 state. Every scalar
// is written in a fixed-width big-endian encoding (float64s as their IEEE
// bit patterns), and every string is length-prefixed, so the byte stream —
// and therefore the digest — is injective over the serialized values.
type Digester struct {
	h hash.Hash
}

// NewDigester returns an empty digest accumulator.
func NewDigester() *Digester {
	return &Digester{h: sha256.New()}
}

// F64 writes one float64 as its exact bit pattern. NaNs and signed zeros
// digest distinctly; no rounding is applied anywhere.
func (d *Digester) F64(v float64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
	d.h.Write(buf[:])
}

// U64 writes one uint64.
func (d *Digester) U64(v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	d.h.Write(buf[:])
}

// Int writes one int.
func (d *Digester) Int(v int) { d.U64(uint64(int64(v))) }

// Str writes one length-prefixed string.
func (d *Digester) Str(s string) {
	d.U64(uint64(len(s)))
	d.h.Write([]byte(s))
}

// Sum returns the hex digest of everything written so far. The digester
// remains usable; Sum is a snapshot.
func (d *Digester) Sum() string {
	return hex.EncodeToString(d.h.Sum(nil))
}

// ResultDigest canonically hashes a full sim.Result: every scalar field,
// every vertex's stats (sorted by name), every link utilization (sorted by
// name), and the fault counters including per-vertex downtime integrals.
func ResultDigest(r sim.Result) string {
	d := NewDigester()
	WriteResult(d, r)
	return d.Sum()
}

// WriteResult appends a canonical serialization of r to the digester, so
// callers can fold several results (replications, sweep points) into one
// digest.
func WriteResult(d *Digester, r sim.Result) {
	d.Str("result")
	d.F64(r.SimTime)
	d.Int(r.OfferedPackets)
	d.F64(r.OfferedBytes)
	d.Int(r.DeliveredPackets)
	d.F64(r.DeliveredBytes)
	d.F64(r.Throughput)
	d.F64(r.MeanLatency)
	d.F64(r.P50)
	d.F64(r.P95)
	d.F64(r.P99)
	d.F64(r.DropRate)
	d.F64(r.InterfaceUtil)
	d.F64(r.MemoryUtil)
	d.F64(r.Window)
	d.Str("links")
	for _, name := range sortedKeys(r.Links) {
		d.Str(name)
		d.F64(r.Links[name])
	}
	d.Str("vertices")
	for _, name := range sortedKeys(r.Vertices) {
		vs := r.Vertices[name]
		d.Str(name)
		d.Int(vs.Arrivals)
		d.Int(vs.Served)
		d.Int(vs.Dropped)
		d.F64(vs.Utilization)
		d.F64(vs.MeanQueueLen)
		d.F64(vs.MeanWait)
	}
	d.Str("faults")
	d.Int(r.Faults.EngineDownEvents)
	d.Int(r.Faults.EngineUpEvents)
	d.Int(r.Faults.LinkDegradeEvents)
	d.Int(r.Faults.LinkRestores)
	d.Int(r.Faults.VertexStallEvents)
	d.Int(r.Faults.StallRecoveries)
	d.Int(r.Faults.Retries)
	d.Int(r.Faults.RetryDrops)
	for _, name := range sortedKeys(r.Faults.EngineDownTime) {
		d.Str(name)
		d.F64(r.Faults.EngineDownTime[name])
	}
}

// TraceHasher folds a simulator's full packet trace stream into a running
// digest: install Hook as Config.Trace and read Sum after the run. Every
// event's kind, timestamp, vertex, size and birth time is hashed in stream
// order, so two engines agree only if they emit the identical event
// sequence — a far stronger check than comparing end-of-run aggregates.
type TraceHasher struct {
	d      *Digester
	events int
}

// NewTraceHasher returns an empty trace digest.
func NewTraceHasher() *TraceHasher {
	return &TraceHasher{d: NewDigester()}
}

// Hook is the Config.Trace callback.
func (t *TraceHasher) Hook(e sim.TraceEvent) {
	t.d.Int(int(e.Kind))
	t.d.F64(e.Time)
	t.d.Str(e.Vertex)
	t.d.F64(e.Size)
	t.d.F64(e.Born)
	t.events++
}

// Events is the number of trace events hashed.
func (t *TraceHasher) Events() int { return t.events }

// Sum is the hex digest of the stream so far.
func (t *TraceHasher) Sum() string { return t.d.Sum() }

// Golden is one committed digest file: a flat map from a descriptive key
// ("liquidio2-md5/seed1/result") to a hex digest. Check records observed
// digests; in update mode Save rewrites the file, otherwise Check fails
// the test on any mismatch or missing entry.
type Golden struct {
	path string
	mu   sync.Mutex
	want map[string]string
	got  map[string]string
}

// testingT is the slice of *testing.T the harness needs; taking the
// interface keeps simtest importable from both tests and generators.
type testingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// LoadGolden opens the digest file at path (conventionally
// testdata/golden_digests.json relative to the test package). A missing
// file is only an error outside update mode.
func LoadGolden(t testingT, path string) *Golden {
	t.Helper()
	g := &Golden{path: path, want: map[string]string{}, got: map[string]string{}}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &g.want); err != nil {
			t.Fatalf("simtest: golden file %s is corrupt: %v", path, err)
		}
	case os.IsNotExist(err) && *Update:
		// First recording: Save will create it.
	default:
		t.Fatalf("simtest: reading golden file %s: %v (run with -update to record)", path, err)
	}
	return g
}

// Check compares one observed digest against the committed golden. In
// update mode it records the digest for Save instead.
func (g *Golden) Check(t testingT, key, digest string) {
	t.Helper()
	g.mu.Lock()
	g.got[key] = digest
	want, ok := g.want[key]
	g.mu.Unlock()
	if *Update {
		return
	}
	if !ok {
		t.Errorf("simtest: no golden digest for %q (run with -update to record)", key)
		return
	}
	if digest != want {
		t.Errorf("simtest: digest mismatch for %q:\n  got  %s\n  want %s\nresults diverged from the recorded engine — if intentional, refresh with -update", key, digest, want)
	}
}

// Save writes the recorded digests back to the golden file in update mode
// (sorted keys, stable formatting); outside update mode it verifies no
// committed key went unchecked, so stale goldens cannot linger silently.
func (g *Golden) Save(t testingT) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	if !*Update {
		for key := range g.want {
			if _, ok := g.got[key]; !ok {
				t.Errorf("simtest: golden file %s has stale entry %q no test checked (refresh with -update)", g.path, key)
			}
		}
		return
	}
	keys := sortedKeys(g.got)
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = g.got[k]
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("simtest: marshaling goldens: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(g.path), 0o755); err != nil {
		t.Fatalf("simtest: creating testdata dir: %v", err)
	}
	if err := os.WriteFile(g.path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("simtest: writing golden file %s: %v", g.path, err)
	}
	t.Logf("simtest: recorded %d golden digests to %s", len(out), g.path)
}

// Key joins key segments with '/', the harness's naming convention.
func Key(parts ...any) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprint(p)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
