package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func TestSizeConversions(t *testing.T) {
	if got := (4 * KB).Bytes(); got != 4096 {
		t.Fatalf("4KB = %v bytes, want 4096", got)
	}
	if got := (Size(64)).Bits(); got != 512 {
		t.Fatalf("64B = %v bits, want 512", got)
	}
	if MTU.Bytes() != 1500 {
		t.Fatalf("MTU = %v, want 1500", MTU.Bytes())
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{64, "64B"},
		{KB, "1KiB"},
		{4 * KB, "4KiB"},
		{MB, "1MiB"},
		{GB, "1GiB"},
		{1536, "1.5KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Size(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBandwidthGbps(t *testing.T) {
	bw := Gbps(25)
	if got := bw.BytesPerSecond(); got != 25e9/8 {
		t.Fatalf("25Gbps = %v B/s, want %v", got, 25e9/8)
	}
	if got := bw.GbpsValue(); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("round trip GbpsValue = %v, want 25", got)
	}
	if got := Mbps(100).GbpsValue(); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("100Mbps = %v Gbps, want 0.1", got)
	}
}

func TestBandwidthString(t *testing.T) {
	if got := Gbps(25).String(); got != "25Gbps" {
		t.Errorf("got %q, want 25Gbps", got)
	}
	if got := Mbps(200).String(); got != "200Mbps" {
		t.Errorf("got %q, want 200Mbps", got)
	}
}

func TestDurationUnits(t *testing.T) {
	d := 150 * Microsecond
	if got := d.Micros(); !almostEqual(got, 150, 1e-12) {
		t.Fatalf("Micros = %v, want 150", got)
	}
	if got := d.Millis(); !almostEqual(got, 0.15, 1e-12) {
		t.Fatalf("Millis = %v, want 0.15", got)
	}
	if got := d.String(); got != "150us" {
		t.Fatalf("String = %q, want 150us", got)
	}
	if got := (2 * Millisecond).String(); got != "2ms" {
		t.Fatalf("String = %q, want 2ms", got)
	}
	if got := (500 * Nanosecond).String(); got != "500ns" {
		t.Fatalf("String = %q, want 500ns", got)
	}
	if got := (3 * Second).String(); got != "3s" {
		t.Fatalf("String = %q, want 3s", got)
	}
}

func TestRateMOPS(t *testing.T) {
	r := MOPS(2.5)
	if got := r.PerSecond(); got != 2.5e6 {
		t.Fatalf("2.5 MOPS = %v/s, want 2.5e6", got)
	}
	if got := r.MOPSValue(); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("MOPSValue = %v, want 2.5", got)
	}
	if r.MRPSValue() != r.MOPSValue() {
		t.Fatal("MRPSValue should alias MOPSValue")
	}
	if got := r.String(); got != "2.5Mops/s" {
		t.Fatalf("String = %q", got)
	}
	if got := Rate(1500).String(); got != "1.5Kops/s" {
		t.Fatalf("String = %q", got)
	}
	if got := Rate(12).String(); got != "12ops/s" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want Size
	}{
		{"64B", 64},
		{"64", 64},
		{" 512 ", 512},
		{"4KB", 4 * KB},
		{"4kb", 4 * KB},
		{"4KiB", 4 * KB},
		{"128KB", 128 * KB},
		{"1MB", MB},
		{"2MiB", 2 * MB},
		{"1GB", GB},
		{"1.5KB", 1536},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "KB", "4XB4"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) expected error", in)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
	}{
		{"25Gbps", Gbps(25)},
		{"25gbps", Gbps(25)},
		{"100Mbps", Mbps(100)},
		{"1GB/s", Bandwidth(GB)},
		{"400MB/s", 400 * Bandwidth(MB)},
		{"1000", 1000},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil {
			t.Errorf("ParseBandwidth(%q) error: %v", c.in, err)
			continue
		}
		if !almostEqual(float64(got), float64(c.want), 1e-12) {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	for _, in := range []string{"", "fastGbps", "xMbps"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q) expected error", in)
		}
	}
}

func TestGbpsRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw%100000)/100 + 0.01 // 0.01 .. 1000 Gbps
		return almostEqual(Gbps(v).GbpsValue(), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeParseFormatRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := Size(raw % 1_000_000)
		parsed, err := ParseSize(v.String())
		if err != nil {
			return false
		}
		return almostEqual(parsed.Bytes(), v.Bytes(), 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
