// Package unit provides typed quantities used throughout the LogNIC model:
// data sizes, bandwidths, durations and rates. Internally everything is a
// float64 in SI base units (bytes, bytes per second, seconds, events per
// second) so the analytical formulas in internal/core can mix them freely;
// the types exist to make call sites self-describing and to centralize
// parsing and formatting.
package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Size is a data size in bytes.
type Size float64

// Common sizes.
const (
	Byte Size = 1
	KB        = 1024 * Byte
	MB        = 1024 * KB
	GB        = 1024 * MB
)

// MTU is the conventional Ethernet maximum transmission unit payload size
// used by the paper's "MTU-sized" traffic profiles.
const MTU Size = 1500

// Bytes returns the size as a plain float64 byte count.
func (s Size) Bytes() float64 { return float64(s) }

// Bits returns the size in bits.
func (s Size) Bits() float64 { return float64(s) * 8 }

// String formats the size with a binary-prefix unit.
func (s Size) String() string {
	v := float64(s)
	switch {
	case math.Abs(v) >= float64(GB):
		return trimFloat(v/float64(GB)) + "GiB"
	case math.Abs(v) >= float64(MB):
		return trimFloat(v/float64(MB)) + "MiB"
	case math.Abs(v) >= float64(KB):
		return trimFloat(v/float64(KB)) + "KiB"
	default:
		return trimFloat(v) + "B"
	}
}

// Bandwidth is a data transfer rate in bytes per second.
type Bandwidth float64

// Common bandwidths. Network link speeds are conventionally quoted in
// decimal bits per second, so Gbps uses 1e9 bits.
const (
	BytePerSecond Bandwidth = 1
	KBps                    = 1024 * BytePerSecond
	MBps                    = 1024 * KBps
	GBps                    = 1024 * MBps
)

// Gbps constructs a Bandwidth from a decimal gigabit-per-second figure, the
// unit used by NIC datasheets (25 GbE, 100 GbE, ...).
func Gbps(v float64) Bandwidth { return Bandwidth(v * 1e9 / 8) }

// Mbps constructs a Bandwidth from a decimal megabit-per-second figure.
func Mbps(v float64) Bandwidth { return Bandwidth(v * 1e6 / 8) }

// BytesPerSecond returns the bandwidth as a plain float64.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) }

// GbpsValue reports the bandwidth in decimal gigabits per second.
func (b Bandwidth) GbpsValue() float64 { return float64(b) * 8 / 1e9 }

// MBpsValue reports the bandwidth in binary megabytes per second.
func (b Bandwidth) MBpsValue() float64 { return float64(b) / float64(MBps) }

// String formats the bandwidth in Gbps or Mbps, matching how the paper's
// figures label their axes.
func (b Bandwidth) String() string {
	g := b.GbpsValue()
	if math.Abs(g) >= 1 {
		return trimFloat(g) + "Gbps"
	}
	return trimFloat(g*1000) + "Mbps"
}

// Duration is a time span in seconds. It deliberately is not time.Duration:
// analytical latencies are real-valued and frequently sub-nanosecond during
// intermediate algebra.
type Duration float64

// Common durations.
const (
	Second      Duration = 1
	Millisecond          = Second / 1000
	Microsecond          = Millisecond / 1000
	Nanosecond           = Microsecond / 1000
)

// Seconds returns the duration as a plain float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Micros reports the duration in microseconds, the paper's usual latency unit.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports the duration in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	v := float64(d)
	switch {
	case math.Abs(v) >= 1:
		return trimFloat(v) + "s"
	case math.Abs(v) >= float64(Millisecond):
		return trimFloat(v/float64(Millisecond)) + "ms"
	case math.Abs(v) >= float64(Microsecond):
		return trimFloat(v/float64(Microsecond)) + "us"
	default:
		return trimFloat(v/float64(Nanosecond)) + "ns"
	}
}

// Rate is an event rate in events per second (requests, packets or
// operations depending on context).
type Rate float64

// MOPS constructs a Rate from a mega-operations-per-second figure, the unit
// Figure 5 and Figure 9 use for accelerator throughput.
func MOPS(v float64) Rate { return Rate(v * 1e6) }

// PerSecond returns the rate as a plain float64.
func (r Rate) PerSecond() float64 { return float64(r) }

// MOPSValue reports the rate in mega-operations per second.
func (r Rate) MOPSValue() float64 { return float64(r) / 1e6 }

// MRPSValue reports the rate in mega-requests per second (alias of
// MOPSValue, matching Figure 11's axis label).
func (r Rate) MRPSValue() float64 { return float64(r) / 1e6 }

// String formats the rate.
func (r Rate) String() string {
	v := float64(r)
	switch {
	case math.Abs(v) >= 1e6:
		return trimFloat(v/1e6) + "Mops/s"
	case math.Abs(v) >= 1e3:
		return trimFloat(v/1e3) + "Kops/s"
	default:
		return trimFloat(v) + "ops/s"
	}
}

// ParseSize parses strings like "64B", "4KB", "1500", "128KiB". Bare numbers
// are bytes. Both decimal-style (KB) and binary-style (KiB) suffixes are
// accepted and treated as binary multiples, which is how the paper uses them
// (4KB IOs are 4096 bytes).
func ParseSize(s string) (Size, error) {
	t := strings.TrimSpace(s)
	mult := Size(1)
	lower := strings.ToLower(t)
	switch {
	case strings.HasSuffix(lower, "gib"), strings.HasSuffix(lower, "gb"):
		mult = GB
		t = t[:len(t)-suffixLen(lower, "gib", "gb")]
	case strings.HasSuffix(lower, "mib"), strings.HasSuffix(lower, "mb"):
		mult = MB
		t = t[:len(t)-suffixLen(lower, "mib", "mb")]
	case strings.HasSuffix(lower, "kib"), strings.HasSuffix(lower, "kb"):
		mult = KB
		t = t[:len(t)-suffixLen(lower, "kib", "kb")]
	case strings.HasSuffix(lower, "b"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("unit: parse size %q: %w", s, err)
	}
	return Size(v) * mult, nil
}

// ParseBandwidth parses strings like "25Gbps", "400MBps", "1e9" (bytes/s).
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	switch {
	case strings.HasSuffix(lower, "gbps"):
		v, err := parsePrefix(t, 4, s)
		return Gbps(v), err
	case strings.HasSuffix(lower, "mbps"):
		v, err := parsePrefix(t, 4, s)
		return Mbps(v), err
	case strings.HasSuffix(lower, "gb/s"):
		v, err := parsePrefix(t, 4, s)
		return Bandwidth(v) * Bandwidth(GB), err
	case strings.HasSuffix(lower, "mb/s"):
		v, err := parsePrefix(t, 4, s)
		return Bandwidth(v) * Bandwidth(MB), err
	default:
		v, err := strconv.ParseFloat(lower, 64)
		if err != nil {
			return 0, fmt.Errorf("unit: parse bandwidth %q: %w", s, err)
		}
		return Bandwidth(v), nil
	}
}

func parsePrefix(t string, suffix int, orig string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(t[:len(t)-suffix]), 64)
	if err != nil {
		return 0, fmt.Errorf("unit: parse bandwidth %q: %w", orig, err)
	}
	return v, nil
}

func suffixLen(lower string, long, short string) int {
	if strings.HasSuffix(lower, long) {
		return len(long)
	}
	return len(short)
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
