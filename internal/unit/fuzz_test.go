package unit

import (
	"math"
	"testing"
)

// FuzzParseSize checks the size parser never panics and that accepted
// values are finite and non-NaN.
func FuzzParseSize(f *testing.F) {
	for _, seed := range []string{"64B", "4KB", "1.5MiB", "", "KB", "1e3", "-7GB", " 12 kb "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSize(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(v)) {
			t.Fatalf("ParseSize(%q) accepted NaN", s)
		}
		// Formatting an accepted value never panics.
		_ = v.String()
	})
}

// FuzzParseBandwidth mirrors FuzzParseSize for the bandwidth parser.
func FuzzParseBandwidth(f *testing.F) {
	for _, seed := range []string{"25Gbps", "100Mbps", "1GB/s", "400MB/s", "1e9", "", "Gbps", "-3Gbps"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseBandwidth(s)
		if err != nil {
			return
		}
		if math.IsNaN(float64(v)) {
			t.Fatalf("ParseBandwidth(%q) accepted NaN", s)
		}
		_ = v.String()
	})
}
