// Package nvme models the NVMe SSD behind the Stingray JBOF of case study
// #2 (paper §4.3). The paper treats the SSD as an opaque IP: its command
// queues and write cache are hidden, so model parameters are obtained by
// characterizing latency/throughput while sweeping the IO depth and curve
// fitting. This package provides the synthetic drive that stands in for the
// physical one — multi-channel parallelism, IO-kind- and size-dependent
// service times, and background garbage collection on a fragmented
// (precondition-with-random-writes) drive. GC couples read and write
// performance dynamically, which is exactly the behavior the paper reports
// LogNIC cannot capture (the ~14.6% misprediction of Figure 7).
package nvme

import (
	"fmt"
	"math"
	"math/rand"

	"lognic/internal/sim"
)

// IOKind classifies an I/O pattern.
type IOKind int

// I/O kinds used by the evaluation: 4KB random read (4KB-RRD), 128KB random
// read (128KB-RRD), 4KB sequential write (4KB-SWR) and the random
// read/write mixes of Figure 7.
const (
	RandRead IOKind = iota
	SeqRead
	RandWrite
	SeqWrite
)

// String names the kind.
func (k IOKind) String() string {
	switch k {
	case RandRead:
		return "rand-read"
	case SeqRead:
		return "seq-read"
	case RandWrite:
		return "rand-write"
	case SeqWrite:
		return "seq-write"
	default:
		return fmt.Sprintf("iokind(%d)", int(k))
	}
}

// IsWrite reports whether the kind writes.
func (k IOKind) IsWrite() bool { return k == RandWrite || k == SeqWrite }

// IsRandom reports whether the kind is random access.
func (k IOKind) IsRandom() bool { return k == RandRead || k == RandWrite }

// Config describes a drive.
type Config struct {
	// Name labels the drive.
	Name string
	// Channels is the internal parallelism (flash channels); expose it as
	// the SSD vertex's Parallelism.
	Channels int
	// ReadAccess/WriteAccess are the fixed per-command access times for a
	// random 4KB operation on one channel (seconds).
	ReadAccess, WriteAccess float64
	// SeqDiscount scales the access component for sequential I/O in
	// (0, 1]: sequential commands skip most of the lookup/translate cost.
	SeqDiscount float64
	// ChannelBW is the per-channel data transfer rate (bytes/second),
	// charged per byte beyond the access time.
	ChannelBW float64
	// Fragmented marks a drive preconditioned with random writes: write
	// commands accrue garbage-collection debt that later commands (reads
	// and writes alike) must pay down.
	Fragmented bool
	// GCWriteAmp scales the garbage-collection cost of a fragmented
	// drive: at a sustained 100%-write load each write accrues
	// GCWriteAmp·WriteAccess seconds of GC debt. The accrual tracks the
	// recent write intensity (GC is driven by how hard the FTL is being
	// rewritten), so a mixed read/write stream pays proportionally less
	// per write — the dynamic coupling the paper notes a static model
	// cannot capture (§4.3). Ignored unless Fragmented.
	GCWriteAmp float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("nvme: %s: channels %d < 1", c.Name, c.Channels)
	}
	if c.ReadAccess <= 0 || c.WriteAccess <= 0 {
		return fmt.Errorf("nvme: %s: non-positive access times", c.Name)
	}
	if c.SeqDiscount <= 0 || c.SeqDiscount > 1 {
		return fmt.Errorf("nvme: %s: seq discount %v outside (0,1]", c.Name, c.SeqDiscount)
	}
	if c.ChannelBW <= 0 {
		return fmt.Errorf("nvme: %s: non-positive channel bandwidth", c.Name)
	}
	if c.Fragmented && c.GCWriteAmp < 0 {
		return fmt.Errorf("nvme: %s: negative write amplification", c.Name)
	}
	return nil
}

// SSD is a synthetic drive instance. It is stateful (GC debt and recent
// write intensity); create one per simulation run.
type SSD struct {
	cfg       Config
	gcDebt    float64 // outstanding GC work, seconds of channel time
	writeFrac float64 // EWMA of the recent write fraction
}

// New builds a drive.
func New(cfg Config) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SSD{cfg: cfg}, nil
}

// Config returns the drive's configuration.
func (s *SSD) Config() Config { return s.cfg }

// MeanServiceTime returns the expected per-command channel occupancy for an
// I/O of the given kind and size, excluding GC effects — the quantity a
// clean-drive characterization observes.
func (s *SSD) MeanServiceTime(kind IOKind, sizeBytes float64) float64 {
	access := s.cfg.ReadAccess
	if kind.IsWrite() {
		access = s.cfg.WriteAccess
	}
	if !kind.IsRandom() {
		access *= s.cfg.SeqDiscount
	}
	return access + sizeBytes/s.cfg.ChannelBW
}

// Capacity returns the drive's saturation throughput (bytes/second) for a
// uniform stream of the given kind and size on a clean drive.
func (s *SSD) Capacity(kind IOKind, sizeBytes float64) float64 {
	return float64(s.cfg.Channels) * sizeBytes / s.MeanServiceTime(kind, sizeBytes)
}

// gcPenalty consumes accumulated GC debt, amortized against this command:
// each command pays down at most its own duration in debt, modeling GC
// stealing channel time from foreground work.
func (s *SSD) gcPenalty(base float64) float64 {
	if !s.cfg.Fragmented || s.gcDebt <= 0 {
		return 0
	}
	pay := math.Min(s.gcDebt, base)
	s.gcDebt -= pay
	return pay
}

// ewmaAlpha is the smoothing factor of the write-intensity tracker.
const ewmaAlpha = 0.02

// accrueGC updates the write-intensity tracker and adds GC debt for a
// write: GCWriteAmp·WriteAccess scaled by how write-heavy the recent
// stream is. A pure write stream converges to the full penalty; a mixed
// stream's writes trigger proportionally less relocation work.
func (s *SSD) accrueGC(kind IOKind) {
	if !s.cfg.Fragmented {
		return
	}
	if kind.IsWrite() {
		s.writeFrac = (1-ewmaAlpha)*s.writeFrac + ewmaAlpha
		s.gcDebt += s.cfg.GCWriteAmp * s.cfg.WriteAccess * s.writeFrac
	} else {
		s.writeFrac = (1 - ewmaAlpha) * s.writeFrac
	}
}

// ServiceTime draws a service time for one command: exponentially
// distributed around the mean (flash-translation lookups, channel
// conflicts and internal readahead make real command latencies heavily
// right-skewed — and the paper's queueing derivation leans on the same
// observation), plus GC interference on fragmented drives.
func (s *SSD) ServiceTime(kind IOKind, sizeBytes float64, rng *rand.Rand) float64 {
	base := s.MeanServiceTime(kind, sizeBytes)
	t := rng.ExpFloat64()*base + s.gcPenalty(base)
	s.accrueGC(kind)
	return t
}

// CharacterizedCapacity is the saturation throughput (bytes/second) a
// pure-stream characterization of this drive observes: the clean-drive
// capacity, degraded by steady-state GC for writes on a fragmented drive
// (a sustained write stream converges to the full GCWriteAmp penalty).
// This is what §4.3's offline characterization feeds the model — and why
// the static model underpredicts mixed workloads, whose writes trigger
// less GC.
func (s *SSD) CharacterizedCapacity(kind IOKind, sizeBytes float64) float64 {
	svc := s.MeanServiceTime(kind, sizeBytes)
	if s.cfg.Fragmented && kind.IsWrite() {
		svc += s.cfg.GCWriteAmp * s.cfg.WriteAccess
	}
	return float64(s.cfg.Channels) * sizeBytes / svc
}

// Timer adapts the drive to the simulator's per-vertex service hook for a
// fixed-kind workload.
func (s *SSD) Timer(kind IOKind) sim.ServiceTimer {
	return func(size float64, outstanding int, rng *rand.Rand) float64 {
		return s.ServiceTime(kind, size, rng)
	}
}

// MixTimer adapts the drive for a read/write mix: each command is a read
// with probability readRatio, otherwise a write. Both kinds are random
// access (Figure 7's 4KB random I/O mix).
func (s *SSD) MixTimer(readRatio float64) sim.ServiceTimer {
	return func(size float64, outstanding int, rng *rand.Rand) float64 {
		kind := RandWrite
		if rng.Float64() < readRatio {
			kind = RandRead
		}
		return s.ServiceTime(kind, size, rng)
	}
}

// GCDebt exposes the current outstanding GC work (seconds of channel
// time), for tests.
func (s *SSD) GCDebt() float64 { return s.gcDebt }

// StingrayDrive returns the drive used by the case-study-#2 experiments: a
// datacenter NVMe SSD behind the Broadcom Stingray PS1100R. The parameter
// provenance is documented in DESIGN.md: values are chosen so the clean
// drive saturates near 3 GB/s on 4KB random reads and ~1.5 GB/s on writes,
// matching the shape of Figures 6 and 7.
func StingrayDrive(fragmented bool) Config {
	return Config{
		Name:        "stingray-nvme",
		Channels:    16,
		ReadAccess:  85e-6,
		WriteAccess: 170e-6,
		SeqDiscount: 0.55,
		ChannelBW:   400e6,
		Fragmented:  fragmented,
		GCWriteAmp:  0.6,
	}
}
