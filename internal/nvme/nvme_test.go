package nvme

import (
	"math"
	"math/rand"
	"testing"

	"lognic/internal/core"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func clean(t *testing.T) *SSD {
	t.Helper()
	s, err := New(StingrayDrive(false))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := StingrayDrive(true).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "ch", Channels: 0, ReadAccess: 1e-4, WriteAccess: 1e-4, SeqDiscount: 1, ChannelBW: 1e8},
		{Name: "ra", Channels: 4, ReadAccess: 0, WriteAccess: 1e-4, SeqDiscount: 1, ChannelBW: 1e8},
		{Name: "wa", Channels: 4, ReadAccess: 1e-4, WriteAccess: 0, SeqDiscount: 1, ChannelBW: 1e8},
		{Name: "sd", Channels: 4, ReadAccess: 1e-4, WriteAccess: 1e-4, SeqDiscount: 0, ChannelBW: 1e8},
		{Name: "sd2", Channels: 4, ReadAccess: 1e-4, WriteAccess: 1e-4, SeqDiscount: 1.5, ChannelBW: 1e8},
		{Name: "bw", Channels: 4, ReadAccess: 1e-4, WriteAccess: 1e-4, SeqDiscount: 1, ChannelBW: 0},
		{Name: "gc", Channels: 4, ReadAccess: 1e-4, WriteAccess: 1e-4, SeqDiscount: 1, ChannelBW: 1e8, Fragmented: true, GCWriteAmp: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", c.Name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New should fail", c.Name)
		}
	}
}

func TestIOKindPredicates(t *testing.T) {
	if !RandWrite.IsWrite() || !SeqWrite.IsWrite() || RandRead.IsWrite() || SeqRead.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
	if !RandRead.IsRandom() || !RandWrite.IsRandom() || SeqRead.IsRandom() || SeqWrite.IsRandom() {
		t.Fatal("IsRandom wrong")
	}
	if RandRead.String() != "rand-read" || IOKind(9).String() != "iokind(9)" {
		t.Fatal("String wrong")
	}
}

func TestMeanServiceTimeOrdering(t *testing.T) {
	s := clean(t)
	// Writes slower than reads; sequential faster than random; bigger
	// blocks slower than small.
	if !(s.MeanServiceTime(RandWrite, 4096) > s.MeanServiceTime(RandRead, 4096)) {
		t.Fatal("write should be slower than read")
	}
	if !(s.MeanServiceTime(SeqRead, 4096) < s.MeanServiceTime(RandRead, 4096)) {
		t.Fatal("sequential should be faster than random")
	}
	if !(s.MeanServiceTime(RandRead, 128*1024) > s.MeanServiceTime(RandRead, 4096)) {
		t.Fatal("bigger IO should take longer")
	}
}

func TestCapacityShape(t *testing.T) {
	s := clean(t)
	// Large blocks amortize access cost: higher byte capacity.
	if !(s.Capacity(RandRead, 128*1024) > s.Capacity(RandRead, 4096)) {
		t.Fatal("128KB capacity should exceed 4KB capacity")
	}
	// Large-block capacity approaches channels×channelBW.
	maxBW := float64(s.Config().Channels) * s.Config().ChannelBW
	if got := s.Capacity(RandRead, 1024*1024); got > maxBW {
		t.Fatalf("capacity %v exceeds channel aggregate %v", got, maxBW)
	}
	// 4KB random read capacity in a plausible datacenter-SSD range.
	got := s.Capacity(RandRead, 4096)
	if got < 0.3e9 || got > 5e9 {
		t.Fatalf("4KB RRD capacity = %v B/s, implausible", got)
	}
}

func TestServiceTimeExponentialMean(t *testing.T) {
	s := clean(t)
	rng := rand.New(rand.NewSource(1))
	mean := s.MeanServiceTime(RandRead, 4096)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ServiceTime(RandRead, 4096, rng)
		if v < 0 {
			t.Fatal("negative service time")
		}
		sum += v
	}
	if got := sum / n; !approx(got, mean, 0.02) {
		t.Fatalf("sample mean %v, want %v", got, mean)
	}
}

func TestCleanDriveNoGC(t *testing.T) {
	s := clean(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		s.ServiceTime(RandWrite, 4096, rng)
	}
	if s.GCDebt() != 0 {
		t.Fatal("clean drive should accrue no GC debt")
	}
}

func TestFragmentedDriveGCCouplesReadsAndWrites(t *testing.T) {
	frag, err := New(StingrayDrive(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Writes accrue debt.
	for i := 0; i < 50; i++ {
		frag.ServiceTime(RandWrite, 4096, rng)
	}
	if frag.GCDebt() <= 0 {
		t.Fatal("fragmented drive should accrue GC debt on writes")
	}
	// Subsequent reads pay it down and run slower than clean-drive reads.
	cleanDrive := clean(t)
	rngA := rand.New(rand.NewSource(4))
	rngB := rand.New(rand.NewSource(4))
	var fragSum, cleanSum float64
	for i := 0; i < 50; i++ {
		fragSum += frag.ServiceTime(RandRead, 4096, rngA)
		cleanSum += cleanDrive.ServiceTime(RandRead, 4096, rngB)
	}
	if fragSum <= cleanSum {
		t.Fatalf("GC should slow reads: frag %v <= clean %v", fragSum, cleanSum)
	}
}

func TestMixTimerRatio(t *testing.T) {
	s := clean(t)
	timer := s.MixTimer(1.0) // all reads
	rng := rand.New(rand.NewSource(5))
	meanRead := s.MeanServiceTime(RandRead, 4096)
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		sum += timer(4096, 0, rng)
	}
	if !approx(sum/n, meanRead, 0.05) {
		t.Fatalf("all-read mix mean %v, want %v", sum/n, meanRead)
	}
	timerW := s.MixTimer(0.0) // all writes
	meanWrite := s.MeanServiceTime(RandWrite, 4096)
	sum = 0
	for i := 0; i < n; i++ {
		sum += timerW(4096, 0, rng)
	}
	if !approx(sum/n, meanWrite, 0.05) {
		t.Fatalf("all-write mix mean %v, want %v", sum/n, meanWrite)
	}
}

// End-to-end: drive the SSD through the simulator and verify the
// latency-vs-throughput curve has the Figure 6 shape — flat at low load,
// diverging near capacity.
func TestSSDThroughSimulatorSaturates(t *testing.T) {
	cfg := StingrayDrive(false)
	capacity := func() float64 {
		s, _ := New(cfg)
		return s.Capacity(RandRead, 4096)
	}()

	run := func(frac float64) sim.Result {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.NewBuilder("jbof").
			AddIngress("in").
			AddVertex(core.Vertex{Name: "ssd", Kind: core.KindIP, Throughput: capacity, Parallelism: cfg.Channels, QueueCapacity: 256}).
			AddEgress("out").
			Connect("in", "ssd", 1).
			Connect("ssd", "out", 1).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:    g,
			Profile:  traffic.Fixed("rrd", unit.Bandwidth(frac*capacity), 4096),
			Seed:     9,
			Duration: 0.8,
			ServiceTime: map[string]sim.ServiceTimer{
				"ssd": s.Timer(RandRead),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := run(0.2)
	high := run(0.9)
	if low.MeanLatency <= 0 || high.MeanLatency <= low.MeanLatency {
		t.Fatalf("latency should grow toward saturation: %v -> %v", low.MeanLatency, high.MeanLatency)
	}
	if !approx(low.Throughput, 0.2*capacity, 0.1) {
		t.Fatalf("low-load throughput %v, want %v", low.Throughput, 0.2*capacity)
	}
}
