package cli

import (
	"encoding/json"
	"strings"
	"testing"

	"lognic/internal/optimizer"
)

func TestParseKnob(t *testing.T) {
	k, err := ParseKnob("ip.parallelism=1..16")
	if err != nil {
		t.Fatal(err)
	}
	if k.Vertex != "ip" || k.Param != "parallelism" || k.Lo != 1 || k.Hi != 16 {
		t.Fatalf("knob = %+v", k)
	}
	k, err = ParseKnob("ssd.queue=8..256")
	if err != nil {
		t.Fatal(err)
	}
	if k.Param != "queue" || k.Hi != 256 {
		t.Fatalf("knob = %+v", k)
	}
	bad := []string{
		"", "ip", "ip=1..2", "ip.speed=1..2", ".queue=1..2",
		"ip.queue=1", "ip.queue=x..2", "ip.queue=1..y",
		"ip.queue=0..4", "ip.queue=5..2",
	}
	for _, in := range bad {
		if _, err := ParseKnob(in); err == nil {
			t.Errorf("ParseKnob(%q) should fail", in)
		}
	}
}

func TestParseGoal(t *testing.T) {
	cases := map[string]optimizer.Goal{
		"latency": optimizer.MinimizeLatency, "min-latency": optimizer.MinimizeLatency,
		"throughput": optimizer.MaximizeThroughput, "max-throughput": optimizer.MaximizeThroughput,
		"goodput": optimizer.MaximizeGoodput, "max-goodput": optimizer.MaximizeGoodput,
	}
	for in, want := range cases {
		got, err := ParseGoal(in)
		if err != nil || got != want {
			t.Errorf("ParseGoal(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseGoal("fastest"); err == nil {
		t.Fatal("unknown goal should fail")
	}
}

func TestRunOptimizeQueueKnob(t *testing.T) {
	m := testModel(t)
	m.Traffic.IngressBW = 0.95e9 // near saturation: queue size matters
	var b strings.Builder
	err := RunOptimize(&b, m, "goodput", []string{"ip.queue=1..32"}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "goal:      max-goodput") {
		t.Fatalf("output:\n%s", out)
	}
	// Goodput is monotone in queue capacity: the search must pick the max.
	if !strings.Contains(out, "ip.queue = 32") {
		t.Fatalf("expected queue=32:\n%s", out)
	}
	if !strings.Contains(out, "exhaustive: true") {
		t.Fatalf("expected exhaustive search:\n%s", out)
	}
}

func TestRunOptimizeLatencyGoalJSON(t *testing.T) {
	m := testModel(t)
	var b strings.Builder
	err := RunOptimize(&b, m, "latency", []string{"ip.queue=1..8"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var res OptimizeResult
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatal(err)
	}
	if res.Goal != "min-latency" || res.Objective <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Smaller queues mean less modeled queueing at this load: expect 1.
	if res.Knobs["ip.queue"] != 1 {
		t.Fatalf("knobs = %v", res.Knobs)
	}
}

func TestRunOptimizeErrors(t *testing.T) {
	m := testModel(t)
	var b strings.Builder
	if err := RunOptimize(&b, m, "latency", nil, false); err == nil {
		t.Fatal("no knobs should fail")
	}
	if err := RunOptimize(&b, m, "warp", []string{"ip.queue=1..4"}, false); err == nil {
		t.Fatal("bad goal should fail")
	}
	if err := RunOptimize(&b, m, "latency", []string{"bogus"}, false); err == nil {
		t.Fatal("bad knob should fail")
	}
	if err := RunOptimize(&b, m, "latency", []string{"ghost.queue=1..4"}, false); err == nil {
		t.Fatal("unknown vertex should fail")
	}
}
