package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lognic/internal/core"
	"lognic/internal/optimizer"
	"lognic/internal/unit"
)

// Knob is one integer parameter the CLI optimizer may turn: a vertex's
// parallelism degree (D_vi) or queue capacity (N_vi), swept over an
// inclusive range. It is the CLI-argument face of optimizer.IntKnob.
type Knob = optimizer.IntKnob

// ParseKnob parses "vertex.param=lo..hi", e.g. "ip.parallelism=1..16" or
// "ssd.queue=8..256".
func ParseKnob(arg string) (Knob, error) {
	eq := strings.SplitN(arg, "=", 2)
	if len(eq) != 2 {
		return Knob{}, fmt.Errorf("cli: bad knob %q, want vertex.param=lo..hi", arg)
	}
	target := strings.SplitN(eq[0], ".", 2)
	if len(target) != 2 || target[0] == "" {
		return Knob{}, fmt.Errorf("cli: bad knob target %q, want vertex.param", eq[0])
	}
	param := target[1]
	if param != optimizer.KnobParallelism && param != optimizer.KnobQueue {
		return Knob{}, fmt.Errorf("cli: unknown knob parameter %q (parallelism|queue)", param)
	}
	bounds := strings.SplitN(eq[1], "..", 2)
	if len(bounds) != 2 {
		return Knob{}, fmt.Errorf("cli: bad knob range %q, want lo..hi", eq[1])
	}
	lo, err := strconv.Atoi(bounds[0])
	if err != nil {
		return Knob{}, fmt.Errorf("cli: bad knob lower bound %q", bounds[0])
	}
	hi, err := strconv.Atoi(bounds[1])
	if err != nil {
		return Knob{}, fmt.Errorf("cli: bad knob upper bound %q", bounds[1])
	}
	if lo < 1 || hi < lo {
		return Knob{}, fmt.Errorf("cli: bad knob range %d..%d", lo, hi)
	}
	return Knob{Vertex: target[0], Param: param, Lo: lo, Hi: hi}, nil
}

// ParseGoal maps a CLI goal name.
func ParseGoal(s string) (optimizer.Goal, error) { return optimizer.GoalFromName(s) }

// OptimizeResult is the outcome of RunOptimize.
type OptimizeResult struct {
	// Goal names the optimized metric.
	Goal string `json:"goal"`
	// Knobs maps "vertex.param" to the chosen value.
	Knobs map[string]int `json:"knobs"`
	// Objective is the metric value at the chosen point (seconds for
	// latency, bytes/second otherwise).
	Objective float64 `json:"objective"`
	// Evaluated counts model evaluations spent.
	Evaluated int `json:"evaluated"`
	// Exhaustive reports whether the search covered the whole space.
	Exhaustive bool `json:"exhaustive"`
}

// RunOptimize searches the knob space for the best configuration under the
// goal and renders the result — the CLI face of the model's optimizer mode
// (Figure 4-a's "apply for optimization" output).
func RunOptimize(w io.Writer, m core.Model, goalName string, knobArgs []string, jsonOut bool) error {
	if len(knobArgs) == 0 {
		return fmt.Errorf("cli: -optimize needs at least one -knob")
	}
	goal, err := ParseGoal(goalName)
	if err != nil {
		return err
	}
	knobs := make([]Knob, 0, len(knobArgs))
	for _, arg := range knobArgs {
		k, err := ParseKnob(arg)
		if err != nil {
			return err
		}
		knobs = append(knobs, k)
	}
	sol, err := optimizer.SolveKnobs(m, goal, knobs, 1<<16)
	if errors.Is(err, optimizer.ErrNoFeasible) {
		return fmt.Errorf("cli: no feasible knob setting found")
	}
	if err != nil {
		return err
	}
	out := OptimizeResult{
		Goal:       goal.String(),
		Knobs:      map[string]int{},
		Objective:  sol.Objective,
		Evaluated:  sol.Evaluated,
		Exhaustive: sol.Exhaustive,
	}
	for i, k := range knobs {
		out.Knobs[k.Name()] = sol.Values[i]
	}
	if jsonOut {
		return json.NewEncoder(w).Encode(out)
	}
	fmt.Fprintf(w, "goal:      %s\n", out.Goal)
	for i, k := range knobs {
		fmt.Fprintf(w, "knob:      %s.%s = %d  (searched %d..%d)\n",
			k.Vertex, k.Param, sol.Values[i], k.Lo, k.Hi)
	}
	switch goal {
	case optimizer.MinimizeLatency:
		fmt.Fprintf(w, "objective: %s\n", unit.Duration(sol.Objective))
	default:
		fmt.Fprintf(w, "objective: %s\n", unit.Bandwidth(sol.Objective))
	}
	fmt.Fprintf(w, "evaluated: %d configurations (exhaustive: %v)\n", out.Evaluated, out.Exhaustive)
	return nil
}
