// Package cli implements the logic behind the cmd/lognic and
// cmd/lognic-sim executables: loading a JSON model spec, evaluating it
// analytically (point estimate or ingress-bandwidth sweep) or by
// simulation, and rendering the results as text or JSON. Keeping it here
// leaves the mains as thin argument parsers and makes the command paths
// testable.
package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/sim"
	"lognic/internal/spec"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// PointResult is the JSON shape of one analytical estimate.
type PointResult struct {
	IngressBW    float64            `json:"ingress_bw"`
	Throughput   float64            `json:"throughput"`
	Bottleneck   string             `json:"bottleneck"`
	Latency      float64            `json:"latency"`
	DropRate     float64            `json:"drop_rate"`
	Constraints  []ConstraintResult `json:"constraints"`
	PathsLatency []PathResult       `json:"paths,omitempty"`
}

// ConstraintResult is one Equation 4 term.
type ConstraintResult struct {
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	Limit float64 `json:"limit"`
}

// PathResult is one path's latency breakdown.
type PathResult struct {
	Vertices []string `json:"vertices"`
	Weight   float64  `json:"weight"`
	Total    float64  `json:"total"`
	Queueing float64  `json:"queueing"`
	Compute  float64  `json:"compute"`
	Overhead float64  `json:"overhead"`
	Movement float64  `json:"movement"`
}

// EstimatePoint evaluates a model once.
func EstimatePoint(m core.Model) (PointResult, error) {
	est, err := m.Estimate()
	if err != nil {
		return PointResult{}, err
	}
	out := PointResult{
		IngressBW:  m.Traffic.IngressBW,
		Throughput: est.Throughput.Attainable,
		Bottleneck: est.Throughput.Bottleneck.String(),
		Latency:    est.Latency.Attainable,
		DropRate:   est.Latency.DropRate,
	}
	for _, c := range est.Throughput.Constraints {
		out.Constraints = append(out.Constraints, ConstraintResult{
			Kind: c.Kind.String(), Name: c.Name, Limit: c.Limit,
		})
	}
	for _, p := range est.Latency.Paths {
		out.PathsLatency = append(out.PathsLatency, PathResult{
			Vertices: p.Vertices, Weight: p.Weight, Total: p.Total,
			Queueing: p.Queueing, Compute: p.Compute,
			Overhead: p.Overhead, Movement: p.Movement,
		})
	}
	return out, nil
}

// RunPoint evaluates and renders a single estimate.
func RunPoint(w io.Writer, m core.Model, jsonOut bool) error {
	pt, err := EstimatePoint(m)
	if err != nil {
		return err
	}
	if jsonOut {
		return json.NewEncoder(w).Encode(pt)
	}
	fmt.Fprintf(w, "graph: %s\n", m.Graph.Name())
	fmt.Fprintf(w, "offered:    %s (granularity %s)\n",
		unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity))
	fmt.Fprintf(w, "throughput: %s\n", unit.Bandwidth(pt.Throughput))
	fmt.Fprintf(w, "bottleneck: %s\n", pt.Bottleneck)
	fmt.Fprintf(w, "latency:    %s (drop rate %.4g)\n", unit.Duration(pt.Latency), pt.DropRate)
	fmt.Fprintln(w, "constraints (tightest first):")
	for _, c := range pt.Constraints {
		name := c.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "  %-14s %-22s %s\n", c.Kind, name, unit.Bandwidth(c.Limit))
	}
	fmt.Fprintln(w, "paths (heaviest first):")
	for _, p := range pt.PathsLatency {
		fmt.Fprintf(w, "  w=%.3f %s\n", p.Weight, strings.Join(p.Vertices, " -> "))
		fmt.Fprintf(w, "         total %s = queue %s + compute %s + overhead %s + move %s\n",
			unit.Duration(p.Total), unit.Duration(p.Queueing), unit.Duration(p.Compute),
			unit.Duration(p.Overhead), unit.Duration(p.Movement))
	}
	return nil
}

// ParseSweep parses a "lo:hi:steps" ingress sweep argument with unit
// strings allowed for the endpoints.
func ParseSweep(arg string) (lo, hi float64, steps int, err error) {
	parts := strings.Split(arg, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("cli: bad sweep %q, want lo:hi:steps", arg)
	}
	loBW, err := unit.ParseBandwidth(parts[0])
	if err != nil {
		return 0, 0, 0, err
	}
	hiBW, err := unit.ParseBandwidth(parts[1])
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &steps); err != nil || steps < 2 {
		return 0, 0, 0, fmt.Errorf("cli: bad step count %q", parts[2])
	}
	if hiBW <= loBW {
		return 0, 0, 0, fmt.Errorf("cli: sweep range inverted: %v..%v", loBW, hiBW)
	}
	return float64(loBW), float64(hiBW), steps, nil
}

// RunSweep evaluates the model across an ingress-bandwidth range and
// renders one row per operating point.
func RunSweep(w io.Writer, m core.Model, arg string, jsonOut bool) error {
	lo, hi, steps, err := ParseSweep(arg)
	if err != nil {
		return err
	}
	var pts []PointResult
	for i := 0; i < steps; i++ {
		bw := lo + (hi-lo)*float64(i)/float64(steps-1)
		mm := m
		mm.Traffic.IngressBW = bw
		pt, err := EstimatePoint(mm)
		if err != nil {
			return err
		}
		pt.PathsLatency = nil // keep sweep output compact
		pts = append(pts, pt)
	}
	if jsonOut {
		return json.NewEncoder(w).Encode(pts)
	}
	fmt.Fprintf(w, "%-14s%-14s%-14s%-12s%s\n", "offered", "throughput", "latency", "droprate", "bottleneck")
	for _, pt := range pts {
		fmt.Fprintf(w, "%-14s%-14s%-14s%-12.4g%s\n",
			unit.Bandwidth(pt.IngressBW), unit.Bandwidth(pt.Throughput),
			unit.Duration(pt.Latency), pt.DropRate, pt.Bottleneck)
	}
	return nil
}

// SimOptions tunes RunSim.
type SimOptions struct {
	// Duration is the simulated time (seconds).
	Duration float64
	// Seed drives the randomness.
	Seed int64
	// Deterministic uses mean service times.
	Deterministic bool
	// JSON selects machine-readable output.
	JSON bool
	// MetricsOut, when non-empty, writes the run's metrics to this path in
	// the Prometheus text format after the run.
	MetricsOut string
	// TraceOut, when non-empty, attaches a span tracer and writes the
	// packet timeline to this path as Chrome trace_event JSON.
	TraceOut string
	// Registry optionally supplies the registry to record into (shared
	// with a debug server); nil with MetricsOut set creates one.
	Registry *obs.Registry
	// Shards, when above 1, runs the simulation on the sharded event
	// engine (sim.Config.Shards). Results are byte-identical to the
	// serial engine; graphs whose correctness constraints collapse the
	// partition silently run serially.
	Shards int
}

// RunSim simulates the model's graph under its traffic profile and renders
// measured results.
func RunSim(w io.Writer, m core.Model, opts SimOptions) error {
	prof := traffic.Fixed(m.Graph.Name(),
		unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity))
	reg := opts.Registry
	if reg == nil && opts.MetricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if opts.TraceOut != "" {
		tracer = obs.NewTracer(0)
	}
	res, err := sim.Run(sim.Config{
		Graph:                m.Graph,
		Hardware:             m.Hardware,
		Profile:              prof,
		Seed:                 opts.Seed,
		Duration:             opts.Duration,
		DeterministicService: opts.Deterministic,
		Metrics:              reg,
		Spans:                tracer,
		Shards:               opts.Shards,
	})
	if err != nil {
		return err
	}
	if opts.MetricsOut != "" {
		if err := writeFileWith(opts.MetricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	if opts.TraceOut != "" {
		if err := writeFileWith(opts.TraceOut, func(f io.Writer) error {
			return tracer.WriteChromeTrace(f, m.Graph.Name())
		}); err != nil {
			return err
		}
	}
	if opts.JSON {
		return json.NewEncoder(w).Encode(res)
	}
	fmt.Fprintf(w, "simulated:  %gs (seed %d)\n", res.SimTime, opts.Seed)
	fmt.Fprintf(w, "offered:    %s, delivered %d packets (%s)\n",
		unit.Bandwidth(m.Traffic.IngressBW), res.DeliveredPackets,
		unit.Bandwidth(res.Throughput))
	fmt.Fprintf(w, "latency:    mean %s  p50 %s  p95 %s  p99 %s\n",
		unit.Duration(res.MeanLatency), unit.Duration(res.P50),
		unit.Duration(res.P95), unit.Duration(res.P99))
	fmt.Fprintf(w, "drop rate:  %.4g\n", res.DropRate)
	fmt.Fprintln(w, "vertices:")
	names := make([]string, 0, len(res.Vertices))
	for n := range res.Vertices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vs := res.Vertices[n]
		fmt.Fprintf(w, "  %-16s util %.3f  qlen %.2f  wait %-10s arrivals %d  drops %d\n",
			n, vs.Utilization, vs.MeanQueueLen, unit.Duration(vs.MeanWait),
			vs.Arrivals, vs.Dropped)
	}
	return nil
}

// LoadModel reads and validates a JSON spec file.
func LoadModel(path string) (core.Model, error) {
	f, err := spec.Load(path)
	if err != nil {
		return core.Model{}, err
	}
	return f.Model()
}

// MixResult is the JSON shape of a mixed-profile estimate.
type MixResult struct {
	// Throughput is the dist_size-weighted attainable rate (bytes/second).
	Throughput float64 `json:"throughput"`
	// Latency is the dist_size-weighted average latency (seconds).
	Latency float64 `json:"latency"`
	// Components holds each slice's point estimate, in spec order.
	Components []PointResult `json:"components"`
}

// RunMix evaluates a spec file's traffic mix (Extension #2: one model per
// packet size, combined by dist_size weight) and renders the result.
func RunMix(w io.Writer, f spec.File, jsonOut bool) error {
	comps, err := f.MixComponents()
	if err != nil {
		return err
	}
	mix, err := core.EstimateMix(comps)
	if err != nil {
		return err
	}
	out := MixResult{Throughput: mix.Throughput, Latency: mix.Latency}
	for _, c := range comps {
		pt, err := EstimatePoint(c.Model)
		if err != nil {
			return err
		}
		pt.PathsLatency = nil
		out.Components = append(out.Components, pt)
	}
	if jsonOut {
		return json.NewEncoder(w).Encode(out)
	}
	fmt.Fprintf(w, "mixed throughput: %s\n", unit.Bandwidth(out.Throughput))
	fmt.Fprintf(w, "mixed latency:    %s\n", unit.Duration(out.Latency))
	fmt.Fprintln(w, "components:")
	for i, c := range comps {
		pt := out.Components[i]
		fmt.Fprintf(w, "  %7s @ %-10s -> %-10s latency %-10s bottleneck %s\n",
			unit.Size(c.Model.Traffic.Granularity), unit.Bandwidth(c.Model.Traffic.IngressBW),
			unit.Bandwidth(pt.Throughput), unit.Duration(pt.Latency), pt.Bottleneck)
	}
	return nil
}

// LoadFile reads a JSON spec file without converting it, for callers that
// need mix or other spec-level features.
func LoadFile(path string) (spec.File, error) { return spec.Load(path) }
