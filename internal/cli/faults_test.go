package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const faultsModelJSON = `{
  "name": "faults-test",
  "hardware": {"interface_bw": "50Gbps"},
  "graph": {
    "vertices": [
      {"name": "in", "kind": "ingress"},
      {"name": "ip", "throughput": "8Gbps", "parallelism": 4, "queue_capacity": 32},
      {"name": "out", "kind": "egress"}
    ],
    "edges": [
      {"from": "in", "to": "ip", "delta": 1, "alpha": 1},
      {"from": "ip", "to": "out", "delta": 1}
    ]
  },
  "traffic": {"ingress_bw": "4Gbps", "granularity": 1024}
}`

const faultsScenarioJSON = `{
  "name": "half the engines",
  "engines_down": {"ip": 2}
}`

// writeFaultsFixtures writes a model and scenario spec into a temp dir.
func writeFaultsFixtures(t *testing.T) (model, scenario string) {
	t.Helper()
	dir := t.TempDir()
	model = filepath.Join(dir, "model.json")
	scenario = filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(model, []byte(faultsModelJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scenario, []byte(faultsScenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return model, scenario
}

// run invokes the subcommand dispatcher and captures its streams.
func run(argv ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = Main(argv, &out, &errw)
	return code, out.String(), errw.String()
}

func TestFaultsComparesOperatingPoints(t *testing.T) {
	model, scenario := writeFaultsFixtures(t)
	code, out, errOut := run("faults", model, scenario)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"scenario: half the engines", "capacity", "degraded", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultsJSONOutput(t *testing.T) {
	model, scenario := writeFaultsFixtures(t)
	code, out, errOut := run("faults", "-json", model, scenario)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var res FaultsResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	// ip loses 2 of 4 engines: capacity halves from 8 Gbps to 4 Gbps.
	if res.Degraded.Capacity >= res.Healthy.Capacity {
		t.Errorf("degraded capacity %v not below healthy %v", res.Degraded.Capacity, res.Healthy.Capacity)
	}
	ratio := res.Degraded.Capacity / res.Healthy.Capacity
	if ratio < 0.49 || ratio > 0.51 {
		t.Errorf("capacity ratio %v, want ~0.5", ratio)
	}
}

func TestFaultsWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	model, scenario := writeFaultsFixtures(t)
	code, out, errOut := run("faults", "-json", "-sim", "-duration", "0.02", model, scenario)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var res FaultsResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.FaultStats == nil || res.FaultStats.EngineDownEvents != 1 {
		t.Errorf("fault stats = %+v, want one engine-down event", res.FaultStats)
	}
	// The healthy sim delivers the 4 Gbps offer; the faulted sim is capped
	// by the halved 4 Gbps capacity, so both sit near 4 Gbps but the
	// degraded one must not exceed the healthy one by much.
	if res.Degraded.SimThroughput <= 0 || res.Healthy.SimThroughput <= 0 {
		t.Errorf("sim throughputs missing: %+v", res)
	}
}

// Exit-code contract: 2 for usage errors, 1 for runtime errors.
func TestMainExitCodes(t *testing.T) {
	model, scenario := writeFaultsFixtures(t)
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyScenario := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(emptyScenario, []byte(`{"name": "nothing"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	badScenario := filepath.Join(dir, "badscenario.json")
	if err := os.WriteFile(badScenario, []byte(`{"engines_down": {"nope": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		argv []string
		code int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"faults no args", []string{"faults"}, 2},
		{"faults one arg", []string{"faults", model}, 2},
		{"faults extra args", []string{"faults", model, scenario, "extra"}, 2},
		{"malformed flag", []string{"faults", "-duration", "zebra", model, scenario}, 2},
		{"unknown flag", []string{"faults", "-zebra", model, scenario}, 2},
		{"missing model file", []string{"faults", filepath.Join(dir, "nope.json"), scenario}, 1},
		{"missing scenario file", []string{"faults", model, filepath.Join(dir, "nope.json")}, 1},
		{"malformed model", []string{"faults", badJSON, scenario}, 1},
		{"malformed scenario", []string{"faults", model, badJSON}, 1},
		{"empty scenario", []string{"faults", model, emptyScenario}, 1},
		{"scenario unknown vertex", []string{"faults", model, badScenario}, 1},
	}
	for _, tc := range cases {
		code, _, errOut := run(tc.argv...)
		if code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}
