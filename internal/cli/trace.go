package cli

// The trace subcommand: run one traced simulation of a model, write the
// packet spans as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing), and print the bottleneck-attribution cross-check of
// the analytical model against the measured run.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/metrics"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/report"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// traceMain parses `lognic trace` arguments and runs the traced
// simulation.
func traceMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "trace.json", "Chrome trace_event output path")
	metricsOut := fs.String("metrics", "", "also write the run's metrics (Prometheus text format) to this path")
	duration := fs.Float64("duration", 0.05, "simulated seconds")
	warmup := fs.Float64("warmup", 0, "warmup seconds excluded from measured statistics")
	seed := fs.Int64("seed", 1, "simulation seed")
	spans := fs.Int("spans", 0, "span ring-buffer capacity (0 = default; oldest spans evicted beyond it)")
	jsonOut := fs.Bool("json", false, "emit the attribution report as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lognic trace [-out trace.json] [-metrics file] [-duration s] [-seed n] [-spans n] [-json] model.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	m, err := LoadModel(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "lognic:", err)
		return 1
	}
	opts := TraceOptions{
		Out: *out, MetricsOut: *metricsOut,
		Duration: *duration, Warmup: *warmup, Seed: *seed,
		SpanCapacity: *spans, JSON: *jsonOut,
	}
	if err := RunTrace(stdout, m, opts); err != nil {
		fmt.Fprintln(stderr, "lognic:", err)
		return 1
	}
	return 0
}

// TraceOptions tunes RunTrace.
type TraceOptions struct {
	// Out is the Chrome trace_event JSON output path.
	Out string
	// MetricsOut optionally receives the run's Prometheus text export.
	MetricsOut string
	// Duration is the simulated time (seconds).
	Duration float64
	// Warmup is excluded from measured statistics.
	Warmup float64
	// Seed drives the randomness.
	Seed int64
	// SpanCapacity bounds the span ring buffer (0 = obs default).
	SpanCapacity int
	// JSON emits the attribution report as JSON instead of a table.
	JSON bool
}

// RunTrace simulates the model once with tracing and metrics attached,
// writes the span timeline as Chrome trace_event JSON, and renders the
// model-vs-simulator bottleneck attribution.
func RunTrace(w io.Writer, m core.Model, opts TraceOptions) error {
	tracer := obs.NewTracer(opts.SpanCapacity)
	reg := obs.NewRegistry()
	res, err := sim.Run(sim.Config{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile: traffic.Fixed(m.Graph.Name(),
			unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity)),
		Seed:     opts.Seed,
		Duration: opts.Duration,
		Warmup:   opts.Warmup,
		Spans:    tracer,
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	if err := writeFileWith(opts.Out, func(f io.Writer) error {
		return tracer.WriteChromeTrace(f, m.Graph.Name())
	}); err != nil {
		return err
	}
	if opts.MetricsOut != "" {
		if err := writeFileWith(opts.MetricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	rep, err := report.Attribution(m, res)
	if err != nil {
		return err
	}
	if opts.JSON {
		return json.NewEncoder(w).Encode(rep)
	}
	fmt.Fprintf(w, "trace: %d spans (%d evicted) -> %s\n", tracer.Len(), tracer.Dropped(), opts.Out)
	fmt.Fprintf(w, "measured: %s throughput, mean latency %s, drop rate %.4g\n\n",
		unit.Bandwidth(res.Throughput), unit.Duration(res.MeanLatency), res.DropRate)
	_, err = io.WriteString(w, rep.Format())
	return err
}

// writeFileWith creates path and streams render into it, reporting either
// failure.
func writeFileWith(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartDebugServer serves observability endpoints on addr until the
// listener is closed: net/http/pprof under /debug/pprof/, the registry's
// Prometheus export at /metrics (?format=json for JSON), and a
// runtime/metrics snapshot at /runtime. It returns the bound listener so
// callers can use ":0" and read the chosen address.
func StartDebugServer(addr string, reg *obs.Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		// Every binary's debug surface reports what build it is — the
		// first question of any fleet investigation.
		obs.RegisterBuildInfo(reg)
		mux.Handle("/metrics", reg)
	}
	mux.HandleFunc("/runtime", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(RuntimeSnapshot())
	})
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}

// RuntimeSnapshot samples every runtime/metrics counter and gauge into a
// flat name → value map (histogram-valued metrics are skipped).
func RuntimeSnapshot() map[string]float64 {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	return out
}

// HeapBytes reads the live heap size from runtime/metrics — the
// lognic-bench run summary samples it between figures to report peak heap.
func HeapBytes() float64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s[0].Value.Uint64())
}
