package cli

// The faults subcommand: healthy-vs-degraded comparison of a model under
// a fault scenario, analytically (core.Degrade) and optionally by faulted
// simulation (sim.PermanentFaults).

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"lognic/internal/core"
	"lognic/internal/serve"
	"lognic/internal/sim"
	"lognic/internal/spec"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// Main dispatches the subcommand-style entry points of cmd/lognic.
// It returns the process exit code: 0 on success, 1 on runtime errors,
// 2 on usage errors.
func Main(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		fmt.Fprintln(stderr, "usage: lognic <subcommand> [args]\nsubcommands: faults, trace, serve")
		return 2
	}
	switch argv[0] {
	case "faults":
		return faultsMain(argv[1:], stdout, stderr)
	case "trace":
		return traceMain(argv[1:], stdout, stderr)
	case "serve":
		return serve.Main(argv[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "lognic: unknown subcommand %q (have: faults, trace, serve)\n", argv[0])
		return 2
	}
}

// faultsMain parses `lognic faults` arguments and runs the comparison.
func faultsMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	simRun := fs.Bool("sim", false, "also measure healthy and faulted simulation runs")
	duration := fs.Float64("duration", 0.05, "simulated seconds per -sim run")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lognic faults [-json] [-sim] [-duration s] [-seed n] model.json scenario.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	m, err := LoadModel(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "lognic:", err)
		return 1
	}
	sc, err := spec.LoadScenario(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "lognic:", err)
		return 1
	}
	opts := FaultsOptions{Sim: *simRun, Duration: *duration, Seed: *seed, JSON: *jsonOut}
	if err := RunFaults(stdout, m, sc, opts); err != nil {
		fmt.Fprintln(stderr, "lognic:", err)
		return 1
	}
	return 0
}

// FaultsOptions tunes RunFaults.
type FaultsOptions struct {
	// Sim additionally measures both operating points by simulation.
	Sim bool
	// Duration is the simulated time per run (seconds).
	Duration float64
	// Seed drives the simulation randomness.
	Seed int64
	// JSON selects machine-readable output.
	JSON bool
}

// FaultsSide is one column of the healthy-vs-degraded comparison.
type FaultsSide struct {
	// Capacity is the load-independent saturation throughput (B/s).
	Capacity float64 `json:"capacity"`
	// Bottleneck is the tightest Equation 4 constraint.
	Bottleneck string `json:"bottleneck"`
	// Latency and DropRate are the model's estimates at the spec's
	// offered load; present only when the spec offers traffic.
	Latency  float64 `json:"latency,omitempty"`
	DropRate float64 `json:"drop_rate,omitempty"`
	// Sim* are the measured counterparts; present only with -sim.
	SimThroughput float64 `json:"sim_throughput,omitempty"`
	SimLatency    float64 `json:"sim_latency,omitempty"`
	SimDropRate   float64 `json:"sim_drop_rate,omitempty"`
}

// FaultsResult is the JSON shape of a faults comparison.
type FaultsResult struct {
	Scenario string     `json:"scenario,omitempty"`
	Healthy  FaultsSide `json:"healthy"`
	Degraded FaultsSide `json:"degraded"`
	// FaultStats reports the degraded simulation's fault activity.
	FaultStats *sim.FaultStats `json:"fault_stats,omitempty"`
}

// faultsSide evaluates one operating point analytically.
func faultsSide(m core.Model) (FaultsSide, error) {
	sat, err := m.SaturationThroughput()
	if err != nil {
		return FaultsSide{}, err
	}
	side := FaultsSide{Capacity: sat.Attainable, Bottleneck: sat.Bottleneck.String()}
	if m.Traffic.IngressBW > 0 {
		if lr, err := m.Latency(); err == nil {
			side.Latency = lr.Attainable
			side.DropRate = lr.DropRate
		}
	}
	return side, nil
}

// simSide measures one operating point, with an optional fault schedule.
func simSide(m core.Model, faults sim.FaultSchedule, opts FaultsOptions) (sim.Result, error) {
	return sim.Run(sim.Config{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile: traffic.Fixed(m.Graph.Name(),
			unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity)),
		Seed:     opts.Seed,
		Duration: opts.Duration,
		Faults:   faults,
	})
}

// RunFaults evaluates a model healthy and under a fault scenario, and
// renders the two operating points side by side.
func RunFaults(w io.Writer, m core.Model, sc spec.Scenario, opts FaultsOptions) error {
	d := sc.Degradation()
	dm, err := core.Degrade(m, d)
	if err != nil {
		return err
	}
	out := FaultsResult{Scenario: sc.Name}
	if out.Healthy, err = faultsSide(m); err != nil {
		return err
	}
	if out.Degraded, err = faultsSide(dm); err != nil {
		return err
	}
	if opts.Sim {
		if m.Traffic.IngressBW <= 0 {
			return fmt.Errorf("cli: -sim needs an offered load; set traffic.ingress_bw in the model spec")
		}
		healthy, err := simSide(m, nil, opts)
		if err != nil {
			return err
		}
		out.Healthy.SimThroughput = healthy.Throughput
		out.Healthy.SimLatency = healthy.MeanLatency
		out.Healthy.SimDropRate = healthy.DropRate
		degraded, err := simSide(m, sim.PermanentFaults(d), opts)
		if err != nil {
			return err
		}
		out.Degraded.SimThroughput = degraded.Throughput
		out.Degraded.SimLatency = degraded.MeanLatency
		out.Degraded.SimDropRate = degraded.DropRate
		out.FaultStats = &degraded.Faults
	}
	if opts.JSON {
		return json.NewEncoder(w).Encode(out)
	}
	renderFaults(w, m, out)
	return nil
}

// renderFaults prints the comparison table.
func renderFaults(w io.Writer, m core.Model, out FaultsResult) {
	if out.Scenario != "" {
		fmt.Fprintf(w, "scenario: %s\n", out.Scenario)
	}
	// Size the healthy/degraded columns to their widest cell (the
	// bottleneck descriptions routinely exceed a fixed width).
	width := 10
	for _, cell := range []string{
		out.Healthy.Bottleneck, out.Degraded.Bottleneck,
		unit.Bandwidth(out.Healthy.Capacity).String(),
		unit.Bandwidth(out.Degraded.Capacity).String(),
	} {
		if len(cell) >= width {
			width = len(cell) + 2
		}
	}
	row := func(label, healthy, degraded, change string) {
		fmt.Fprintf(w, "%-16s%-*s%-*s%s\n", label, width, healthy, width, degraded, change)
	}
	pct := func(h, d float64) string {
		if h == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", 100*(d-h)/h)
	}
	row("", "healthy", "degraded", "change")
	row("capacity",
		unit.Bandwidth(out.Healthy.Capacity).String(),
		unit.Bandwidth(out.Degraded.Capacity).String(),
		pct(out.Healthy.Capacity, out.Degraded.Capacity))
	row("bottleneck", out.Healthy.Bottleneck, out.Degraded.Bottleneck, "")
	if out.Healthy.Latency > 0 || out.Degraded.Latency > 0 {
		label := fmt.Sprintf("latency@%s", unit.Bandwidth(m.Traffic.IngressBW))
		row(label,
			unit.Duration(out.Healthy.Latency).String(),
			unit.Duration(out.Degraded.Latency).String(),
			pct(out.Healthy.Latency, out.Degraded.Latency))
		row("drop rate",
			fmt.Sprintf("%.4g", out.Healthy.DropRate),
			fmt.Sprintf("%.4g", out.Degraded.DropRate),
			"")
	}
	if out.FaultStats != nil {
		row("sim throughput",
			unit.Bandwidth(out.Healthy.SimThroughput).String(),
			unit.Bandwidth(out.Degraded.SimThroughput).String(),
			pct(out.Healthy.SimThroughput, out.Degraded.SimThroughput))
		row("sim latency",
			unit.Duration(out.Healthy.SimLatency).String(),
			unit.Duration(out.Degraded.SimLatency).String(),
			pct(out.Healthy.SimLatency, out.Degraded.SimLatency))
		row("sim drop rate",
			fmt.Sprintf("%.4g", out.Healthy.SimDropRate),
			fmt.Sprintf("%.4g", out.Degraded.SimDropRate),
			"")
		fs := out.FaultStats
		fmt.Fprintf(w, "fault events: engine-down %d, link-degrade %d, retries %d, retry drops %d\n",
			fs.EngineDownEvents, fs.LinkDegradeEvents, fs.Retries, fs.RetryDrops)
	}
}
