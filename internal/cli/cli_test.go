package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lognic/internal/core"
	"lognic/internal/spec"
)

// specParse loads a small mixed-traffic spec for RunMix tests.
func specParse(t *testing.T) (spec.File, error) {
	t.Helper()
	return spec.Parse([]byte(`{
	  "name": "mixed",
	  "graph": {
	    "vertices": [
	      {"name": "in", "kind": "ingress"},
	      {"name": "ip", "throughput": "16Gbps", "parallelism": 4, "queue_capacity": 32},
	      {"name": "out", "kind": "egress"}
	    ],
	    "edges": [
	      {"from": "in", "to": "ip", "delta": 1},
	      {"from": "ip", "to": "out", "delta": 1}
	    ]
	  },
	  "traffic": {
	    "ingress_bw": "10Gbps",
	    "mix": [
	      {"weight": 0.8, "granularity": "64B"},
	      {"weight": 0.2, "granularity": 1500}
	    ]
	  }
	}`))
}

func testModel(t *testing.T) core.Model {
	t.Helper()
	g, err := core.NewBuilder("cli-test").
		AddIngress("in").
		AddIP("ip", 1e9, 2, 32).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: 0.8e9, Granularity: 1024},
	}
}

func TestEstimatePoint(t *testing.T) {
	pt, err := EstimatePoint(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput != 0.8e9 {
		t.Fatalf("Throughput = %v", pt.Throughput)
	}
	if pt.Latency <= 0 {
		t.Fatal("Latency must be positive")
	}
	if len(pt.Constraints) == 0 || len(pt.PathsLatency) != 1 {
		t.Fatalf("constraints = %d paths = %d", len(pt.Constraints), len(pt.PathsLatency))
	}
	if !strings.Contains(pt.Bottleneck, "ingress") {
		t.Fatalf("Bottleneck = %q", pt.Bottleneck)
	}
}

func TestRunPointText(t *testing.T) {
	var b strings.Builder
	if err := RunPoint(&b, testModel(t), false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph: cli-test", "throughput:", "bottleneck:", "constraints", "paths", "in -> ip -> out"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPointJSON(t *testing.T) {
	var b strings.Builder
	if err := RunPoint(&b, testModel(t), true); err != nil {
		t.Fatal(err)
	}
	var pt PointResult
	if err := json.Unmarshal([]byte(b.String()), &pt); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if pt.Throughput != 0.8e9 {
		t.Fatalf("Throughput = %v", pt.Throughput)
	}
}

func TestRunPointInvalidModel(t *testing.T) {
	var b strings.Builder
	if err := RunPoint(&b, core.Model{}, false); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestParseSweep(t *testing.T) {
	lo, hi, steps, err := ParseSweep("1Gbps:25Gbps:10")
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1e9/8 || hi != 25e9/8 || steps != 10 {
		t.Fatalf("parsed %v %v %v", lo, hi, steps)
	}
	bad := []string{"", "1:2", "x:2:3", "1:y:3", "1:2:z", "1:2:1", "2Gbps:1Gbps:5"}
	for _, in := range bad {
		if _, _, _, err := ParseSweep(in); err == nil {
			t.Errorf("ParseSweep(%q) should fail", in)
		}
	}
}

func TestRunSweepText(t *testing.T) {
	var b strings.Builder
	if err := RunSweep(&b, testModel(t), "1Gbps:10Gbps:4", false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], "offered") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunSweepJSON(t *testing.T) {
	var b strings.Builder
	if err := RunSweep(&b, testModel(t), "1Gbps:10Gbps:3", true); err != nil {
		t.Fatal(err)
	}
	var pts []PointResult
	if err := json.Unmarshal([]byte(b.String()), &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sweep output stays compact.
	if pts[0].PathsLatency != nil {
		t.Fatal("sweep points should omit path breakdowns")
	}
	if err := RunSweep(&b, testModel(t), "bogus", true); err == nil {
		t.Fatal("bad sweep arg should fail")
	}
}

func TestRunSimTextAndJSON(t *testing.T) {
	var b strings.Builder
	err := RunSim(&b, testModel(t), SimOptions{Duration: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"simulated:", "delivered", "latency:", "drop rate:", "vertices:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	b.Reset()
	if err := RunSim(&b, testModel(t), SimOptions{Duration: 0.02, Seed: 1, JSON: true, Deterministic: true}); err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(res["Vertices"]); err != nil {
		t.Fatal(err)
	}
	// Invalid duration surfaces as an error.
	if err := RunSim(&b, testModel(t), SimOptions{Duration: 0}); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestLoadModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	specJSON := `{
	  "name": "file-test",
	  "graph": {
	    "vertices": [
	      {"name": "in", "kind": "ingress"},
	      {"name": "ip", "throughput": "8Gbps", "parallelism": 1, "queue_capacity": 8},
	      {"name": "out", "kind": "egress"}
	    ],
	    "edges": [
	      {"from": "in", "to": "ip", "delta": 1},
	      {"from": "ip", "to": "out", "delta": 1}
	    ]
	  },
	  "traffic": {"ingress_bw": "4Gbps", "granularity": 512}
	}`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.Name() != "file-test" {
		t.Fatalf("name = %q", m.Graph.Name())
	}
	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(badPath); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestRunMix(t *testing.T) {
	f, err := specParse(t)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RunMix(&b, f, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mixed throughput:") || !strings.Contains(out, "components:") {
		t.Fatalf("output:\n%s", out)
	}
	b.Reset()
	if err := RunMix(&b, f, true); err != nil {
		t.Fatal(err)
	}
	var res MixResult
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || len(res.Components) != 2 {
		t.Fatalf("result = %+v", res)
	}
}
