package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lognic/internal/obs"
)

// chromeTrace mirrors the Chrome trace_event JSON object format enough to
// validate what RunTrace writes.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		PID   int     `json:"pid"`
	} `json:"traceEvents"`
}

func TestRunTraceWritesPerfettoTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	m := testModel(t)
	m.Traffic.IngressBW = 0.9e9 // near the ip vertex's 1 Gbps capacity

	var b strings.Builder
	err := RunTrace(&b, m, TraceOptions{
		Out: tracePath, MetricsOut: metricsPath,
		Duration: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var complete, meta int
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "X":
			complete++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("event %q has negative ts/dur: %+v", ev.Name, ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q in event %+v", ev.Phase, ev)
		}
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("want complete and metadata events, got X=%d M=%d", complete, meta)
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE lognic_sim_packets_delivered_total counter", "lognic_sim_latency_seconds_bucket"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics file missing %q", want)
		}
	}

	out := b.String()
	for _, want := range []string{"trace:", "measured:", "component"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceJSONReport(t *testing.T) {
	dir := t.TempDir()
	m := testModel(t)
	var b strings.Builder
	err := RunTrace(&b, m, TraceOptions{
		Out: filepath.Join(dir, "trace.json"), Duration: 0.01, Seed: 1, JSON: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, b.String())
	}
	if len(rep.Model) == 0 {
		t.Fatal("JSON report has no model components")
	}
}

func TestTraceMainUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := traceMain(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-arg traceMain = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: lognic trace") {
		t.Fatalf("usage missing:\n%s", errOut.String())
	}
}

func TestMainDispatchesTrace(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"trace"}, &out, &errOut); code != 2 {
		t.Fatalf("Main trace without model = %d, want 2", code)
	}
	if code := Main([]string{"nope"}, &out, &errOut); code != 2 {
		t.Fatalf("Main unknown subcommand = %d, want 2", code)
	}
}

func TestStartDebugServer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("lognic_test_total", "test counter", nil).Inc()
	ln, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ln.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "lognic_test_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(get("/runtime")), &snap); err != nil {
		t.Fatalf("/runtime not JSON: %v", err)
	}
	if len(snap) == 0 {
		t.Error("/runtime snapshot empty")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), string(os.Args[0][0])) {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestHeapBytes(t *testing.T) {
	if h := HeapBytes(); h <= 0 {
		t.Fatalf("HeapBytes = %v, want > 0", h)
	}
	snap := RuntimeSnapshot()
	if _, ok := snap["/memory/classes/heap/objects:bytes"]; !ok {
		t.Fatal("RuntimeSnapshot missing heap bytes metric")
	}
}
