package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestThroughputComputeBound(t *testing.T) {
	// A single IP with P = 1 GB/s and full traffic through it must cap the
	// system at 1 GB/s when offered more.
	g := linearGraph(t, 1e9, 1, 0)
	m := Model{
		Hardware: Hardware{InterfaceBW: 100e9, MemoryBW: 100e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 10e9, Granularity: 1500},
	}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 1e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 1e9", rep.Attainable)
	}
	if rep.Bottleneck.Kind != ConstraintIPCompute || rep.Bottleneck.Name != "ip" {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
}

func TestThroughputIngressBound(t *testing.T) {
	// Offered load below every capacity: ingress is the binding term.
	g := linearGraph(t, 10e9, 1, 0)
	m := Model{
		Hardware: Hardware{InterfaceBW: 100e9, MemoryBW: 100e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 1e9, Granularity: 1500},
	}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 1e9, 1e-12) {
		t.Fatalf("Attainable = %v", rep.Attainable)
	}
	if rep.Bottleneck.Kind != ConstraintIngress {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
}

func TestThroughputInterfaceBound(t *testing.T) {
	// Every edge over the interface, Σα = 2, BW_INTF = 1 GB/s → cap 0.5 GB/s.
	g := linearGraph(t, 100e9, 1, 0)
	m := Model{
		Hardware: Hardware{InterfaceBW: 1e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 10e9, Granularity: 1500},
	}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 0.5e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 5e8", rep.Attainable)
	}
	if rep.Bottleneck.Kind != ConstraintInterface {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
}

func TestThroughputMemoryBound(t *testing.T) {
	g, err := NewBuilder("mem").
		AddIngress("in").
		AddIP("ip", 100e9, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 1, Beta: 1}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 1, Beta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{
		Hardware: Hardware{InterfaceBW: 100e9, MemoryBW: 4e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 50e9, Granularity: 4096},
	}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 2e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 2e9 (BW_MEM/Σβ)", rep.Attainable)
	}
	if rep.Bottleneck.Kind != ConstraintMemory {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
}

func TestThroughputEdgeBound(t *testing.T) {
	g, err := NewBuilder("edge").
		AddIngress("in").
		AddIP("ip", 100e9, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 1, Bandwidth: 3e9}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 50e9, Granularity: 1500}}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 3e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 3e9", rep.Attainable)
	}
	if rep.Bottleneck.Kind != ConstraintEdge || rep.Bottleneck.Name != "in->ip" {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
}

func TestThroughputPartialDelta(t *testing.T) {
	// An IP that only sees half of W (δ=0.5) doubles its effective ceiling
	// in ingress terms: P/Σδ.
	g, err := NewBuilder("partial").
		AddIngress("in").
		AddIP("ip", 1e9, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 0.5, Alpha: 0.5}).
		AddEdge(Edge{From: "in", To: "out", Delta: 0.5, Alpha: 0.5}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 0.5, Alpha: 0.5}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 100e9, Granularity: 1500}}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 2e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 2e9 (P/δ = 1e9/0.5)", rep.Attainable)
	}
}

func TestThroughputPartitionAndAcceleration(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	v, _ := g.Vertex("ip")
	v.Partition = 0.5
	v.Acceleration = 3
	g2, err := g.WithVertex(v)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: g2, Traffic: Traffic{IngressBW: 100e9, Granularity: 1500}}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 1.5e9, 1e-12) {
		t.Fatalf("Attainable = %v, want γ·A·P = 1.5e9", rep.Attainable)
	}
}

func TestSaturationThroughputIgnoresOfferedLoad(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 1, Granularity: 1500}}
	rep, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 1e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 1e9", rep.Attainable)
	}
	for _, c := range rep.Constraints {
		if c.Kind == ConstraintIngress {
			t.Fatal("saturation constraints should not include ingress")
		}
	}
}

func TestThroughputConstraintsSorted(t *testing.T) {
	g := nvmeofGraph(t)
	m := Model{
		Hardware: Hardware{InterfaceBW: 12e9, MemoryBW: 20e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 100e9, Granularity: 4096},
	}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Constraints); i++ {
		if rep.Constraints[i].Limit < rep.Constraints[i-1].Limit {
			t.Fatal("constraints not sorted tightest-first")
		}
	}
	if rep.Bottleneck != rep.Constraints[0] {
		t.Fatal("bottleneck is not the first constraint")
	}
	if rep.Attainable != rep.Constraints[0].Limit {
		t.Fatal("attainable must equal tightest limit")
	}
}

func TestThroughputMinPropertyNeverExceedsAnyConstraint(t *testing.T) {
	f := func(pRaw, bwRaw, inRaw uint32) bool {
		p := float64(pRaw%1000+1) * 1e7
		bw := float64(bwRaw%1000+1) * 1e7
		in := float64(inRaw%1000+1) * 1e7
		g, err := NewBuilder("prop").
			AddIngress("in").
			AddIP("ip", p, 1, 0).
			AddEgress("out").
			Connect("in", "ip", 1).
			Connect("ip", "out", 1).
			Build()
		if err != nil {
			return false
		}
		m := Model{
			Hardware: Hardware{InterfaceBW: bw},
			Graph:    g,
			Traffic:  Traffic{IngressBW: in, Granularity: 1500},
		}
		rep, err := m.Throughput()
		if err != nil {
			return false
		}
		want := math.Min(in, math.Min(p, bw/2))
		return approx(rep.Attainable, want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidate(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	cases := []Model{
		{Graph: nil, Traffic: Traffic{IngressBW: 1, Granularity: 1}},
		{Graph: g, Traffic: Traffic{IngressBW: -1, Granularity: 1}},
		{Graph: g, Traffic: Traffic{IngressBW: 1, Granularity: 0}},
		{Graph: g, Hardware: Hardware{InterfaceBW: -1}, Traffic: Traffic{IngressBW: 1, Granularity: 1}},
		{Graph: g, Hardware: Hardware{MemoryBW: math.NaN()}, Traffic: Traffic{IngressBW: 1, Granularity: 1}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := m.Throughput(); err == nil {
			t.Errorf("case %d: Throughput should fail validation", i)
		}
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Kind: ConstraintIPCompute, Name: "ip1", Limit: 1e9}
	if got := c.String(); !strings.Contains(got, "ip-compute(ip1)") {
		t.Fatalf("String = %q", got)
	}
	c2 := Constraint{Kind: ConstraintMemory, Limit: 2e9}
	if got := c2.String(); !strings.Contains(got, "memory limit") {
		t.Fatalf("String = %q", got)
	}
	kinds := map[ConstraintKind]string{
		ConstraintIngress:   "ingress",
		ConstraintEdge:      "edge-bandwidth",
		ConstraintInterface: "interface",
		ConstraintKind(99):  "constraint(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
