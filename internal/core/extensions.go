package core

import (
	"fmt"
	"sort"
)

// This file implements the §3.7 generalizations: Extension #1 (consolidate
// multiple execution graphs for multi-tenancy), Extension #2 (mixed traffic
// profiles), and Extension #3 (rate limiters for non-work-conserving IPs).

// MixComponent is one slice of a mixed traffic profile: an execution graph
// specialized for one packet size (per-IP C, δ and O vary with size, so the
// paper applies a different graph per size) plus that size's share of the
// traffic.
type MixComponent struct {
	// Weight is the dist_size probability of this component. Weights are
	// normalized across the mix.
	Weight float64
	// Model is the per-size model; its Traffic carries the component's
	// granularity and its share of the ingress bandwidth.
	Model Model
}

// MixEstimate aggregates a mixed profile.
type MixEstimate struct {
	// Throughput is Σ dist_size × P_attainable (bytes/second).
	Throughput float64
	// Latency is Σ dist_size × T_attainable (seconds).
	Latency float64
	// Components holds each component's estimate in input order.
	Components []Estimate
}

// EstimateMix evaluates Extension #2: every component is estimated with its
// own execution graph and the results are combined as the dist_size-weighted
// averages of Equations 3 and 8.
func EstimateMix(components []MixComponent) (MixEstimate, error) {
	if len(components) == 0 {
		return MixEstimate{}, fmt.Errorf("core: empty traffic mix")
	}
	total := 0.0
	for _, c := range components {
		if c.Weight < 0 || !finite(c.Weight) {
			return MixEstimate{}, fmt.Errorf("core: invalid mix weight %v", c.Weight)
		}
		total += c.Weight
	}
	if total <= 0 {
		return MixEstimate{}, fmt.Errorf("core: mix weights sum to zero")
	}
	var out MixEstimate
	for _, c := range components {
		est, err := c.Model.Estimate()
		if err != nil {
			return MixEstimate{}, err
		}
		w := c.Weight / total
		out.Throughput += w * est.Throughput.Attainable
		out.Latency += w * est.Latency.Attainable
		out.Components = append(out.Components, est)
	}
	return out, nil
}

// Tenant is one offloaded program sharing the SmartNIC (Extension #1).
type Tenant struct {
	// Weight is w_Gi: this tenant's share of the total ingress data W.
	Weight float64
	// Graph is the tenant's execution graph. Vertices with equal names
	// across tenants denote the same physical IP; use the Partition (γ)
	// field to express how the physical engine is multiplexed.
	Graph *Graph
	// Granularity optionally overrides the shared ingress granularity for
	// this tenant (bytes). Zero uses MultiTenant.Traffic.Granularity.
	Granularity float64
}

// MultiTenant consolidates several execution graphs over one device.
type MultiTenant struct {
	Hardware Hardware
	// Traffic is the aggregate profile; IngressBW is the total offered
	// load split across tenants by weight.
	Traffic Traffic
	Tenants []Tenant
}

// TenantEstimate is one tenant's view of the consolidated estimate.
type TenantEstimate struct {
	// Weight is the normalized share of ingress data.
	Weight float64
	// Throughput is the tenant's attainable share (bytes/second): its
	// weight times the device-wide attainable rate, further capped by the
	// tenant graph's own constraints at its offered share.
	Throughput float64
	// Latency is the tenant's average latency at its offered share.
	Latency LatencyReport
}

// MultiTenantEstimate is the device-wide result of consolidation.
type MultiTenantEstimate struct {
	// Attainable is the total ingress rate the device sustains with every
	// tenant active (bytes/second).
	Attainable float64
	// Bottleneck is the tightest aggregated constraint.
	Bottleneck Constraint
	// Constraints lists all aggregated constraints, tightest first.
	Constraints []Constraint
	// Latency is the tenant-weighted average latency (seconds).
	Latency float64
	// Tenants holds per-tenant results in input order.
	Tenants []TenantEstimate
}

// Estimate consolidates the tenants per Extension #1: it splits W across
// graphs by weight, aggregates each shared resource's usage (Σ w_Gi·α etc.),
// and derives the overall attainable throughput and the per-tenant and
// weighted-average latencies.
func (mt MultiTenant) Estimate() (MultiTenantEstimate, error) {
	if len(mt.Tenants) == 0 {
		return MultiTenantEstimate{}, fmt.Errorf("core: no tenants")
	}
	if err := mt.Hardware.validate(); err != nil {
		return MultiTenantEstimate{}, err
	}
	if err := mt.Traffic.validate(); err != nil {
		return MultiTenantEstimate{}, err
	}
	total := 0.0
	for i, t := range mt.Tenants {
		if t.Graph == nil {
			return MultiTenantEstimate{}, fmt.Errorf("core: tenant %d has no graph", i)
		}
		if t.Weight <= 0 || !finite(t.Weight) {
			return MultiTenantEstimate{}, fmt.Errorf("core: tenant %d: invalid weight %v", i, t.Weight)
		}
		total += t.Weight
	}

	// Aggregate resource usage across tenants, in fractions of total W.
	var sumAlpha, sumBeta float64
	ipLoad := map[string]float64{}      // physical IP name -> Σ w·Σδ_in
	ipRate := map[string]float64{}      // physical IP name -> P (max seen)
	edgeLoad := map[[2]string]float64{} // characterized edge -> Σ w·δ
	edgeRate := map[[2]string]float64{} // characterized edge -> BW
	for _, t := range mt.Tenants {
		w := t.Weight / total
		for _, e := range t.Graph.Edges() {
			sumAlpha += w * e.Alpha
			sumBeta += w * e.Beta
			if e.Bandwidth > 0 && e.Delta > 0 {
				k := [2]string{e.From, e.To}
				edgeLoad[k] += w * e.Delta
				if e.Bandwidth > edgeRate[k] {
					edgeRate[k] = e.Bandwidth
				}
			}
		}
		for _, v := range t.Graph.Vertices() {
			if v.Throughput <= 0 {
				continue
			}
			din := t.Graph.DeltaIn(v.Name)
			if din <= 0 {
				continue
			}
			// The physical engine's full rate serves the aggregated load;
			// γ only shapes the per-tenant latency view.
			ipLoad[v.Name] += w * din
			if v.Throughput > ipRate[v.Name] {
				ipRate[v.Name] = v.Throughput
			}
		}
	}

	var cs []Constraint
	cs = append(cs, Constraint{Kind: ConstraintIngress, Limit: mt.Traffic.IngressBW})
	for name, load := range ipLoad {
		cs = append(cs, Constraint{Kind: ConstraintIPCompute, Name: name, Limit: ipRate[name] / load})
	}
	for k, load := range edgeLoad {
		cs = append(cs, Constraint{Kind: ConstraintEdge, Name: k[0] + "->" + k[1], Limit: edgeRate[k] / load})
	}
	if mt.Hardware.InterfaceBW > 0 && sumAlpha > 0 {
		cs = append(cs, Constraint{Kind: ConstraintInterface, Limit: mt.Hardware.InterfaceBW / sumAlpha})
	}
	if mt.Hardware.MemoryBW > 0 && sumBeta > 0 {
		cs = append(cs, Constraint{Kind: ConstraintMemory, Limit: mt.Hardware.MemoryBW / sumBeta})
	}
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Limit < cs[j].Limit })

	out := MultiTenantEstimate{
		Attainable:  cs[0].Limit,
		Bottleneck:  cs[0],
		Constraints: cs,
	}
	// Per-tenant latency at the tenant's admitted share of the attainable
	// rate.
	for _, t := range mt.Tenants {
		w := t.Weight / total
		gIn := t.Granularity
		if gIn == 0 {
			gIn = mt.Traffic.Granularity
		}
		share := w * minf(out.Attainable, mt.Traffic.IngressBW)
		m := Model{
			Hardware: mt.Hardware,
			Graph:    t.Graph,
			Traffic:  Traffic{IngressBW: share, Granularity: gIn},
		}
		lr, err := m.Latency()
		if err != nil {
			return MultiTenantEstimate{}, err
		}
		out.Tenants = append(out.Tenants, TenantEstimate{
			Weight:     w,
			Throughput: share,
			Latency:    lr,
		})
		out.Latency += w * lr.Attainable
	}
	return out, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// InsertRateLimiter implements Extension #3: it places a rate-limiter
// vertex in front of the named vertex, rewiring all of its incoming edges
// through a block that only enqueues/dequeues at the given rate
// (bytes/second) behind a queue of the given capacity. The limiter's queue
// captures the computation-resource idleness of a non-work-conserving IP.
func InsertRateLimiter(g *Graph, before string, rate float64, queueCap int) (*Graph, error) {
	target, ok := g.Vertex(before)
	if !ok {
		return nil, fmt.Errorf("core: InsertRateLimiter: unknown vertex %q", before)
	}
	if target.Kind == KindIngress {
		return nil, fmt.Errorf("core: cannot rate limit ingress engine %q", before)
	}
	if rate <= 0 || !finite(rate) {
		return nil, fmt.Errorf("core: invalid rate-limit %v", rate)
	}
	if queueCap < 1 {
		return nil, fmt.Errorf("core: rate limiter needs a queue capacity >= 1")
	}
	limiter := "ratelimit:" + before
	if _, exists := g.Vertex(limiter); exists {
		return nil, fmt.Errorf("core: vertex %q already rate limited", before)
	}
	vs := g.Vertices()
	vs = append(vs, Vertex{
		Name:          limiter,
		Kind:          KindRateLimiter,
		Throughput:    rate,
		QueueCapacity: queueCap,
	})
	var es []Edge
	deltaIn := 0.0
	for _, e := range g.Edges() {
		if e.To == before {
			deltaIn += e.Delta
			e.To = limiter
		}
		es = append(es, e)
	}
	// The limiter forwards everything it admits; the hop itself moves no
	// extra data over interface or memory.
	es = append(es, Edge{From: limiter, To: before, Delta: deltaIn})
	return NewGraph(g.Name(), vs, es)
}
