// Package core implements the LogNIC analytical model (paper §3): the
// software execution graph abstraction, throughput modeling (Equations
// 1–4), latency modeling (Equations 5–8 and the M/M/1/N queueing delay of
// Equation 12), and the §3.7 generalizations (multi-tenant graph
// consolidation, per-packet-size traffic mixes, and rate-limiter vertices
// for non-work-conserving IPs).
//
// Quantities are plain float64s in SI base units — bytes, bytes/second and
// seconds — so the formula code reads like the paper. The public lognic
// package wraps these in the typed quantities of internal/unit.
package core

import (
	"fmt"
	"math"
)

// VertexKind distinguishes the roles a vertex can play in an execution
// graph.
type VertexKind int

// Vertex kinds.
const (
	// KindIP is an intellectual-property block: a general-purpose core
	// group, domain-specific accelerator, DSP, or any other execution
	// engine (paper §3.2).
	KindIP VertexKind = iota
	// KindIngress is an ingress engine moving traffic from wire/PCIe into
	// the SmartNIC.
	KindIngress
	// KindEgress is an egress engine moving traffic out of the SmartNIC.
	KindEgress
	// KindRateLimiter is the specialized enqueue/dequeue-only block that
	// Extension #3 places in front of a non-work-conserving IP. It has no
	// compute cost, only a finite queue.
	KindRateLimiter
)

// String names the kind.
func (k VertexKind) String() string {
	switch k {
	case KindIP:
		return "ip"
	case KindIngress:
		return "ingress"
	case KindEgress:
		return "egress"
	case KindRateLimiter:
		return "ratelimiter"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Vertex is a node of the execution graph: an IP block, ingress or egress
// engine, or a rate limiter. The fields correspond to the software
// parameters of Table 2.
type Vertex struct {
	// Name identifies the vertex within its graph.
	Name string
	// Kind classifies the vertex.
	Kind VertexKind
	// Throughput is P_vi: the computing throughput of the physical IP, in
	// bytes/second of ingress-granularity data it can process. Zero means
	// "no compute constraint" (pure forwarding), which is the default for
	// ingress/egress and rate limiters.
	Throughput float64
	// Parallelism is D_vi: the parallelism degree of this (virtual) IP in
	// the execution graph — how many engines concurrently serve one
	// request batch. Defaults to 1.
	Parallelism int
	// QueueCapacity is N_vi: the capacity of the vertex's logical input
	// queue for the M/M/1/N model. Zero disables queueing-delay modeling
	// for the vertex.
	QueueCapacity int
	// Overhead is O_i: the computation-transfer overhead (seconds) paid
	// when handing work from this vertex to the next — accelerator call
	// preparation, doorbells, completion signaling. Independent of
	// granularity and parallelism (paper §3.6).
	Overhead float64
	// Acceleration is A_i: the tunable kernel-optimization factor dividing
	// the compute time (C_i/A_i). Defaults to 1.
	Acceleration float64
	// Partition is γ_vi: the multiplexing fraction of the physical engine
	// this virtual IP owns under node partitioning. In (0, 1]; defaults
	// to 1.
	Partition float64
	// QueueModel selects how the vertex's queueing delay is derived; the
	// default is the paper's folded M/M/1/N (Equations 9–12).
	QueueModel QueueModel
}

// QueueModel selects the queueing abstraction of a vertex.
type QueueModel int

// Queue models.
const (
	// QueueMM1N is the paper's treatment: parallelism folded into λ and μ
	// (Equation 11) and the delay from the M/M/1/N closed form
	// (Equation 12).
	QueueMM1N QueueModel = iota
	// QueueMMcK is this repository's multi-server extension: the D_vi
	// engines are modeled as c independent exponential servers behind the
	// shared queue (M/M/c/K with K = D+N). Wide IPs whose engines serve
	// whole requests independently — the NVMe SSD's flash channels —
	// queue far less than the folded form predicts; see the queue-model
	// ablation benchmark.
	QueueMMcK
)

// String names the queue model.
func (q QueueModel) String() string {
	switch q {
	case QueueMM1N:
		return "mm1n"
	case QueueMMcK:
		return "mmck"
	default:
		return fmt.Sprintf("queuemodel(%d)", int(q))
	}
}

// normalized returns a copy with defaults applied.
func (v Vertex) normalized() Vertex {
	if v.Parallelism <= 0 {
		v.Parallelism = 1
	}
	if v.Acceleration <= 0 {
		v.Acceleration = 1
	}
	if v.Partition <= 0 || v.Partition > 1 {
		if v.Partition == 0 {
			v.Partition = 1
		}
	}
	return v
}

// validate checks the vertex parameters.
func (v Vertex) validate() error {
	if v.Name == "" {
		return fmt.Errorf("core: vertex with empty name")
	}
	if v.Throughput < 0 || !finite(v.Throughput) {
		return fmt.Errorf("core: vertex %q: invalid throughput %v", v.Name, v.Throughput)
	}
	if v.Overhead < 0 || !finite(v.Overhead) {
		return fmt.Errorf("core: vertex %q: invalid overhead %v", v.Name, v.Overhead)
	}
	if v.Partition < 0 || v.Partition > 1 {
		return fmt.Errorf("core: vertex %q: partition %v outside (0,1]", v.Name, v.Partition)
	}
	if v.QueueCapacity < 0 {
		return fmt.Errorf("core: vertex %q: negative queue capacity", v.Name)
	}
	if (v.Kind == KindIngress || v.Kind == KindEgress) && v.QueueCapacity != 0 {
		return fmt.Errorf("core: vertex %q: ingress/egress engines do not queue", v.Name)
	}
	return nil
}

// effectiveThroughput returns γ·A·P, the compute rate available to this
// virtual IP after node partitioning and kernel acceleration.
func (v Vertex) effectiveThroughput() float64 {
	return v.Partition * v.Acceleration * v.Throughput
}

// Edge is a directed data movement between two vertices via a communication
// medium. Fractions are relative to W, the total data entering the
// SmartNIC (paper §3.5).
type Edge struct {
	// From and To name the endpoint vertices.
	From, To string
	// Delta is δ_eij: the fraction of W transferred across this edge.
	Delta float64
	// Alpha is α_eij: the fraction of W this edge moves over the SoC
	// interface medium.
	Alpha float64
	// Beta is β_eij: the fraction of W this edge moves over the memory
	// subsystem.
	Beta float64
	// Bandwidth is BW_mn: an explicitly characterized IP-IP bandwidth cap
	// for this edge, in bytes/second. Zero means uncharacterized (no
	// dedicated cap; the shared interface/memory ceilings still apply).
	Bandwidth float64
}

// validate checks the edge parameters.
func (e Edge) validate() error {
	id := fmt.Sprintf("%s->%s", e.From, e.To)
	for name, v := range map[string]float64{"delta": e.Delta, "alpha": e.Alpha, "beta": e.Beta} {
		if v < 0 || !finite(v) {
			return fmt.Errorf("core: edge %s: invalid %s %v", id, name, v)
		}
	}
	if e.Bandwidth < 0 || !finite(e.Bandwidth) {
		return fmt.Errorf("core: edge %s: invalid bandwidth %v", id, e.Bandwidth)
	}
	return nil
}

// moveTimePerPacket returns the data-movement latency of this edge for one
// ingress granule of size gIn bytes (Equation 7):
// g/BW = g_in·α/BW_INTF + g_in·β/BW_MEM. When the edge carries no medium
// fractions but has an explicitly characterized bandwidth, the movement is
// charged against that instead.
func (e Edge) moveTimePerPacket(gIn float64, hw Hardware) float64 {
	t := 0.0
	if e.Alpha > 0 && hw.InterfaceBW > 0 {
		t += gIn * e.Alpha / hw.InterfaceBW
	}
	if e.Beta > 0 && hw.MemoryBW > 0 {
		t += gIn * e.Beta / hw.MemoryBW
	}
	if t == 0 && e.Bandwidth > 0 && e.Delta > 0 {
		t = gIn * e.Delta / e.Bandwidth
	}
	return t
}

// Hardware carries the device-wide hardware parameters of Table 2.
type Hardware struct {
	// InterfaceBW is BW_INTF: the maximum communication bandwidth over the
	// SoC interface, bytes/second. Zero means unconstrained.
	InterfaceBW float64
	// MemoryBW is BW_MEM: the maximum transfer rate of the memory
	// hierarchy, bytes/second. Zero means unconstrained.
	MemoryBW float64
}

// validate checks the hardware parameters.
func (h Hardware) validate() error {
	if h.InterfaceBW < 0 || !finite(h.InterfaceBW) {
		return fmt.Errorf("core: invalid interface bandwidth %v", h.InterfaceBW)
	}
	if h.MemoryBW < 0 || !finite(h.MemoryBW) {
		return fmt.Errorf("core: invalid memory bandwidth %v", h.MemoryBW)
	}
	return nil
}

// Traffic describes one traffic profile: a single packet size offered at a
// fixed rate, matching the base assumptions of §3.5. Mixed-size profiles
// are handled by the Extension #2 machinery in extensions.go.
type Traffic struct {
	// IngressBW is BW_in: the data serving rate into the SmartNIC,
	// bytes/second.
	IngressBW float64
	// Granularity is g_in: the data transfer granularity at the ingress
	// engine, bytes — normally the packet (or I/O request) size.
	Granularity float64
}

// validate checks the traffic parameters.
func (t Traffic) validate() error {
	if t.IngressBW < 0 || !finite(t.IngressBW) {
		return fmt.Errorf("core: invalid ingress bandwidth %v", t.IngressBW)
	}
	if t.Granularity <= 0 || !finite(t.Granularity) {
		return fmt.Errorf("core: invalid ingress granularity %v", t.Granularity)
	}
	return nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
