package core

import (
	"math"
	"strings"
	"testing"
)

// linearGraph builds ingress -> ip -> egress with the given IP parameters.
func linearGraph(t *testing.T, p float64, par, qcap int) *Graph {
	t.Helper()
	g, err := NewBuilder("linear").
		AddIngress("rx").
		AddIP("ip", p, par, qcap).
		AddEgress("tx").
		Connect("rx", "ip", 1).
		Connect("ip", "tx", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// nvmeofGraph mirrors Figure 2(c): ingress -> IP1(core) -> IP2(SSD) ->
// IP3(core) -> egress.
func nvmeofGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder("nvmeof").
		AddIngress("eth-in").
		AddIP("ip1", 5e9, 4, 32).
		AddIP("ip2", 3e9, 8, 64).
		AddIP("ip3", 5e9, 4, 32).
		AddEgress("eth-out").
		AddEdge(Edge{From: "eth-in", To: "ip1", Delta: 1, Alpha: 1}).
		AddEdge(Edge{From: "ip1", To: "ip2", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(Edge{From: "ip2", To: "ip3", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(Edge{From: "ip3", To: "eth-out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderLinear(t *testing.T) {
	g := linearGraph(t, 1e9, 2, 16)
	if g.Name() != "linear" {
		t.Fatalf("Name = %q", g.Name())
	}
	if len(g.Vertices()) != 3 || len(g.Edges()) != 2 {
		t.Fatalf("got %d vertices, %d edges", len(g.Vertices()), len(g.Edges()))
	}
	v, ok := g.Vertex("ip")
	if !ok {
		t.Fatal("vertex ip missing")
	}
	if v.Parallelism != 2 || v.QueueCapacity != 16 || v.Throughput != 1e9 {
		t.Fatalf("vertex = %+v", v)
	}
	if v.Acceleration != 1 || v.Partition != 1 {
		t.Fatalf("defaults not applied: %+v", v)
	}
	if got := g.Ingresses(); len(got) != 1 || got[0] != "rx" {
		t.Fatalf("Ingresses = %v", got)
	}
	if got := g.Egresses(); len(got) != 1 || got[0] != "tx" {
		t.Fatalf("Egresses = %v", got)
	}
}

func TestGraphValidationErrors(t *testing.T) {
	ing := Vertex{Name: "in", Kind: KindIngress}
	eg := Vertex{Name: "out", Kind: KindEgress}
	ip := Vertex{Name: "ip", Kind: KindIP, Throughput: 1e9}
	full := func(from, to string) Edge { return Edge{From: from, To: to, Delta: 1} }

	cases := []struct {
		name     string
		vertices []Vertex
		edges    []Edge
		errPart  string
	}{
		{"no ingress", []Vertex{eg, ip}, []Edge{full("ip", "out")}, "no ingress"},
		{"no egress", []Vertex{ing, ip}, []Edge{full("in", "ip")}, "no egress"},
		{"dup vertex", []Vertex{ing, ing, eg}, []Edge{full("in", "out")}, "duplicate vertex"},
		{"unknown from", []Vertex{ing, eg}, []Edge{full("ghost", "out")}, "unknown vertex"},
		{"unknown to", []Vertex{ing, eg}, []Edge{full("in", "ghost")}, "unknown vertex"},
		{"dup edge", []Vertex{ing, eg}, []Edge{full("in", "out"), full("in", "out")}, "duplicate edge"},
		{"into ingress", []Vertex{ing, ip, eg}, []Edge{full("in", "ip"), full("ip", "in"), full("ip", "out")}, "enters an ingress"},
		{"out of egress", []Vertex{ing, ip, eg}, []Edge{full("in", "out"), full("out", "ip"), full("ip", "out")}, "leaves an egress"},
		{"unreachable", []Vertex{ing, ip, eg}, []Edge{full("in", "out")}, "unreachable"},
		{"dead end", []Vertex{ing, ip, eg}, []Edge{full("in", "ip"), full("in", "out")}, "cannot reach"},
		{"neg delta", []Vertex{ing, eg}, []Edge{{From: "in", To: "out", Delta: -1}}, "invalid delta"},
		{"nan alpha", []Vertex{ing, eg}, []Edge{{From: "in", To: "out", Alpha: math.NaN()}}, "invalid alpha"},
		{"neg bw", []Vertex{ing, eg}, []Edge{{From: "in", To: "out", Bandwidth: -5}}, "invalid bandwidth"},
		{"empty vertex name", []Vertex{{Kind: KindIP}, ing, eg}, []Edge{full("in", "out")}, "empty name"},
		{"neg overhead", []Vertex{{Name: "x", Kind: KindIP, Overhead: -1}, ing, eg}, []Edge{full("in", "out")}, "invalid overhead"},
		{"ingress queue", []Vertex{{Name: "in", Kind: KindIngress, QueueCapacity: 4}, eg}, []Edge{full("in", "out")}, "do not queue"},
	}
	for _, c := range cases {
		_, err := NewGraph("bad", c.vertices, c.edges)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.errPart)
		}
	}
}

func TestGraphCycleRejected(t *testing.T) {
	vs := []Vertex{
		{Name: "in", Kind: KindIngress},
		{Name: "a", Kind: KindIP, Throughput: 1},
		{Name: "b", Kind: KindIP, Throughput: 1},
		{Name: "out", Kind: KindEgress},
	}
	es := []Edge{
		{From: "in", To: "a", Delta: 1},
		{From: "a", To: "b", Delta: 1},
		{From: "b", To: "a", Delta: 1},
		{From: "b", To: "out", Delta: 1},
	}
	if _, err := NewGraph("cycle", vs, es); err == nil {
		t.Fatal("expected cycle rejection")
	}
}

func TestInOutEdgesAndDeltaIn(t *testing.T) {
	g := nvmeofGraph(t)
	if got := g.InDegree("ip2"); got != 1 {
		t.Fatalf("InDegree(ip2) = %d", got)
	}
	if got := g.DeltaIn("ip2"); got != 1 {
		t.Fatalf("DeltaIn(ip2) = %v", got)
	}
	in := g.InEdges("ip2")
	if len(in) != 1 || in[0].From != "ip1" {
		t.Fatalf("InEdges(ip2) = %+v", in)
	}
	out := g.OutEdges("ip1")
	if len(out) != 1 || out[0].To != "ip2" {
		t.Fatalf("OutEdges(ip1) = %+v", out)
	}
	if _, ok := g.Edge("ip1", "ip3"); ok {
		t.Fatal("nonexistent edge found")
	}
}

func TestPathsSingle(t *testing.T) {
	g := nvmeofGraph(t)
	paths, err := g.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	if math.Abs(paths[0].Weight-1) > 1e-12 {
		t.Fatalf("weight = %v, want 1", paths[0].Weight)
	}
	want := []string{"eth-in", "ip1", "ip2", "ip3", "eth-out"}
	for i, v := range want {
		if paths[0].Vertices[i] != v {
			t.Fatalf("path = %v, want %v", paths[0].Vertices, want)
		}
	}
}

func TestPathsFanOutWeights(t *testing.T) {
	// 70/30 split at a scheduler vertex.
	g, err := NewBuilder("fanout").
		AddIngress("in").
		AddIP("sched", 10e9, 1, 0).
		AddIP("a1", 1e9, 1, 0).
		AddIP("a2", 2e9, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "sched", Delta: 1, Alpha: 1}).
		AddEdge(Edge{From: "sched", To: "a1", Delta: 0.7, Alpha: 0.7}).
		AddEdge(Edge{From: "sched", To: "a2", Delta: 0.3, Alpha: 0.3}).
		AddEdge(Edge{From: "a1", To: "out", Delta: 0.7, Alpha: 0.7}).
		AddEdge(Edge{From: "a2", To: "out", Delta: 0.3, Alpha: 0.3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	// Heaviest first.
	if math.Abs(paths[0].Weight-0.7) > 1e-12 || math.Abs(paths[1].Weight-0.3) > 1e-12 {
		t.Fatalf("weights = %v, %v; want 0.7, 0.3", paths[0].Weight, paths[1].Weight)
	}
	sum := paths[0].Weight + paths[1].Weight
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestWithVertex(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 8)
	v, _ := g.Vertex("ip")
	v.Parallelism = 4
	g2, err := g.WithVertex(v)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := g2.Vertex("ip")
	if v2.Parallelism != 4 {
		t.Fatalf("Parallelism = %d, want 4", v2.Parallelism)
	}
	// Original unchanged.
	v1, _ := g.Vertex("ip")
	if v1.Parallelism != 1 {
		t.Fatal("WithVertex mutated original graph")
	}
	if _, err := g.WithVertex(Vertex{Name: "ghost"}); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
}

func TestWithEdge(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 8)
	e, _ := g.Edge("rx", "ip")
	e.Delta = 0.5
	e.Alpha = 0.5
	g2, err := g.WithEdge(e)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := g2.Edge("rx", "ip")
	if e2.Delta != 0.5 {
		t.Fatalf("Delta = %v, want 0.5", e2.Delta)
	}
	e1, _ := g.Edge("rx", "ip")
	if e1.Delta != 1 {
		t.Fatal("WithEdge mutated original graph")
	}
	if _, err := g.WithEdge(Edge{From: "a", To: "b"}); err == nil {
		t.Fatal("expected error for unknown edge")
	}
}

func TestVertexKindString(t *testing.T) {
	cases := map[VertexKind]string{
		KindIP:          "ip",
		KindIngress:     "ingress",
		KindEgress:      "egress",
		KindRateLimiter: "ratelimiter",
		VertexKind(42):  "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestMultiIngressPaths(t *testing.T) {
	// Two ingress ports feeding one IP.
	g, err := NewBuilder("dual").
		AddIngress("rx0").
		AddIngress("rx1").
		AddIP("ip", 1e9, 1, 0).
		AddEgress("tx").
		AddEdge(Edge{From: "rx0", To: "ip", Delta: 0.5, Alpha: 0.5}).
		AddEdge(Edge{From: "rx1", To: "ip", Delta: 0.5, Alpha: 0.5}).
		AddEdge(Edge{From: "ip", To: "tx", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if g.InDegree("ip") != 2 || g.DeltaIn("ip") != 1 {
		t.Fatalf("indegree=%d deltaIn=%v", g.InDegree("ip"), g.DeltaIn("ip"))
	}
}
