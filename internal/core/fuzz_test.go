package core

import (
	"fmt"
	"math"
	"testing"
)

// fuzzFloat maps one byte to a float64, reserving the top values for the
// non-finite pathologies graph validation must reject without panicking.
func fuzzFloat(b byte) float64 {
	switch b {
	case 255:
		return math.NaN()
	case 254:
		return math.Inf(1)
	case 253:
		return math.Inf(-1)
	default:
		return float64(int8(b)) / 16 // spans negatives and fractions
	}
}

// decodeGraph turns arbitrary bytes into a vertex/edge soup: structurally
// varied, frequently invalid, deterministic for a given input.
func decodeGraph(data []byte) ([]Vertex, []Edge) {
	if len(data) == 0 {
		return nil, nil
	}
	nv := 2 + int(data[0]%6)
	data = data[1:]
	vertices := make([]Vertex, 0, nv)
	for i := 0; i < nv; i++ {
		var b [4]byte
		for j := range b {
			if len(data) > 0 {
				b[j] = data[0]
				data = data[1:]
			}
		}
		kind := VertexKind(b[0] % 5) // one past KindRateLimiter: invalid kinds too
		switch i {
		case 0:
			kind = KindIngress
		case nv - 1:
			kind = KindEgress
		}
		vertices = append(vertices, Vertex{
			Name:          fmt.Sprintf("v%d", i),
			Kind:          kind,
			Throughput:    fuzzFloat(b[1]) * 1e9,
			Parallelism:   int(b[2]%10) - 1,
			QueueCapacity: int(b[3]%70) - 2,
		})
	}
	var edges []Edge
	for len(data) >= 5 {
		edges = append(edges, Edge{
			From:  fmt.Sprintf("v%d", int(data[0])%nv),
			To:    fmt.Sprintf("v%d", int(data[1])%nv),
			Delta: fuzzFloat(data[2]),
			Alpha: fuzzFloat(data[3]),
			Beta:  fuzzFloat(data[4]),
		})
		data = data[5:]
	}
	return vertices, edges
}

// FuzzNewGraph checks that arbitrary vertex/edge soups never panic graph
// construction, and that any graph NewGraph accepts answers the model's
// queries (paths, saturation, full estimate) without panicking. Use
// `go test -fuzz=FuzzNewGraph ./internal/core` to explore.
func FuzzNewGraph(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	// A valid 3-vertex chain: in -> v1 -> out with delta/alpha 1.
	f.Add([]byte{1, 0, 0, 0, 0, 0, 16, 3, 65, 0, 0, 0, 0, 0, 1, 16, 16, 0, 1, 2, 16, 0, 0})
	// A cycle and a self-loop.
	f.Add([]byte{1, 0, 0, 0, 0, 0, 16, 3, 65, 0, 0, 0, 0, 1, 1, 16, 0, 0, 1, 1, 16, 0, 0})
	// Non-finite fractions.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 255, 254, 253})
	f.Fuzz(func(t *testing.T, data []byte) {
		vertices, edges := decodeGraph(data)
		g, err := NewGraph("fuzz", vertices, edges)
		if err != nil {
			return // invalid soups must fail, not panic
		}
		if _, err := g.Paths(); err != nil {
			return // e.g. no complete ingress->egress path
		}
		m := Model{
			Hardware: Hardware{InterfaceBW: 10e9, MemoryBW: 20e9},
			Graph:    g,
			Traffic:  Traffic{IngressBW: 1e9, Granularity: 1500},
		}
		// Estimation may reject the model, but must not panic, and any
		// throughput it does report must not be negative or NaN.
		est, err := m.Estimate()
		if err != nil {
			return
		}
		a := est.Throughput.Attainable
		if a < 0 || math.IsNaN(a) {
			t.Fatalf("estimate produced invalid throughput %v", a)
		}
	})
}
