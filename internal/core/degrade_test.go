package core

import (
	"math"
	"strings"
	"testing"
)

// degradeModel builds the reference chain for the Degrade tests:
// in → a (4 engines, 4 GB/s, over the interface) → b (2 engines, 8 GB/s,
// over a characterized 10 GB/s edge) → out.
func degradeModel(t *testing.T) Model {
	t.Helper()
	b := NewBuilder("degrade-chain")
	b.AddIngress("in")
	b.AddVertex(Vertex{Name: "a", Kind: KindIP, Throughput: 4e9, Parallelism: 4, QueueCapacity: 32})
	b.AddVertex(Vertex{Name: "b", Kind: KindIP, Throughput: 8e9, Parallelism: 2, QueueCapacity: 32})
	b.AddEgress("out")
	b.AddEdge(Edge{From: "in", To: "a", Delta: 1, Alpha: 1})
	b.AddEdge(Edge{From: "a", To: "b", Delta: 1, Bandwidth: 10e9})
	b.AddEdge(Edge{From: "b", To: "out", Delta: 1, Beta: 0.5})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		Hardware: Hardware{InterfaceBW: 12e9, MemoryBW: 20e9},
		Graph:    g,
		Traffic:  Traffic{Granularity: 1500},
	}
}

func TestDegradeEngineLoss(t *testing.T) {
	m := degradeModel(t)
	dm, err := Degrade(m, Degradation{EnginesDown: map[string]int{"a": 3}})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := dm.Graph.Vertex("a")
	if !ok {
		t.Fatal("vertex a disappeared")
	}
	if v.Parallelism != 1 {
		t.Errorf("Parallelism = %d, want 1", v.Parallelism)
	}
	if math.Abs(v.Throughput-1e9) > 1 {
		t.Errorf("Throughput = %v, want 1e9 (4e9 scaled by 1/4)", v.Throughput)
	}
	// Untouched vertices keep their parameters.
	if vb, _ := dm.Graph.Vertex("b"); vb.Parallelism != 2 || vb.Throughput != 8e9 {
		t.Errorf("vertex b changed: %+v", vb)
	}
	// The input model is untouched (Degrade returns a copy).
	if va, _ := m.Graph.Vertex("a"); va.Parallelism != 4 || va.Throughput != 4e9 {
		t.Errorf("input model mutated: %+v", va)
	}
}

func TestDegradeLinkFactors(t *testing.T) {
	m := degradeModel(t)
	dm, err := Degrade(m, Degradation{LinkFactors: map[string]float64{
		LinkInterface: 0.5,
		LinkMemory:    0.25,
		"a->b":        0.1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dm.Hardware.InterfaceBW-6e9) > 1 {
		t.Errorf("InterfaceBW = %v, want 6e9", dm.Hardware.InterfaceBW)
	}
	if math.Abs(dm.Hardware.MemoryBW-5e9) > 1 {
		t.Errorf("MemoryBW = %v, want 5e9", dm.Hardware.MemoryBW)
	}
	e, ok := dm.Graph.Edge("a", "b")
	if !ok {
		t.Fatal("edge a->b disappeared")
	}
	if math.Abs(e.Bandwidth-1e9) > 1 {
		t.Errorf("edge bandwidth = %v, want 1e9", e.Bandwidth)
	}
	// Originals untouched.
	if m.Hardware.InterfaceBW != 12e9 || m.Hardware.MemoryBW != 20e9 {
		t.Errorf("input hardware mutated: %+v", m.Hardware)
	}
	if eo, _ := m.Graph.Edge("a", "b"); eo.Bandwidth != 10e9 {
		t.Errorf("input edge mutated: %+v", eo)
	}
}

// The degraded model's saturation throughput follows the folded
// parameters: losing 3 of a's 4 engines turns a into a 1 GB/s bottleneck.
func TestDegradeCapacityScaling(t *testing.T) {
	m := degradeModel(t)
	healthy, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Degrade(m, Degradation{EnginesDown: map[string]int{"a": 3}})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := dm.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sat.Attainable-1e9) > 1e3 {
		t.Errorf("degraded capacity = %v, want 1e9", sat.Attainable)
	}
	if sat.Attainable >= healthy.Attainable {
		t.Errorf("degradation did not reduce capacity: %v vs healthy %v", sat.Attainable, healthy.Attainable)
	}
	if !strings.Contains(sat.Bottleneck.String(), "a") {
		t.Errorf("bottleneck %v does not name vertex a", sat.Bottleneck)
	}
	// A factor of exactly 1 is a no-op on capacity.
	id, err := Degrade(m, Degradation{LinkFactors: map[string]float64{LinkInterface: 1}})
	if err != nil {
		t.Fatal(err)
	}
	idSat, err := id.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if idSat.Attainable != healthy.Attainable {
		t.Errorf("identity factor changed capacity: %v vs %v", idSat.Attainable, healthy.Attainable)
	}
}

func TestDegradationEmpty(t *testing.T) {
	if !(Degradation{}).Empty() {
		t.Error("zero Degradation not Empty")
	}
	if (Degradation{EnginesDown: map[string]int{"a": 1}}).Empty() {
		t.Error("non-trivial Degradation reported Empty")
	}
	m := degradeModel(t)
	dm, err := Degrade(m, Degradation{})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := m.SaturationThroughput()
	s2, _ := dm.SaturationThroughput()
	if s1.Attainable != s2.Attainable {
		t.Errorf("empty degradation changed capacity: %v vs %v", s2.Attainable, s1.Attainable)
	}
}

func TestDegradeValidationErrors(t *testing.T) {
	m := degradeModel(t)
	noMem := m
	noMem.Hardware.MemoryBW = 0
	cases := []struct {
		name  string
		model Model
		d     Degradation
	}{
		{"unknown vertex", m, Degradation{EnginesDown: map[string]int{"nope": 1}}},
		{"zero engines lost", m, Degradation{EnginesDown: map[string]int{"a": 0}}},
		{"negative engines lost", m, Degradation{EnginesDown: map[string]int{"a": -2}}},
		{"all engines lost", m, Degradation{EnginesDown: map[string]int{"a": 4}}},
		{"more than all engines", m, Degradation{EnginesDown: map[string]int{"a": 7}}},
		{"zero factor", m, Degradation{LinkFactors: map[string]float64{LinkInterface: 0}}},
		{"negative factor", m, Degradation{LinkFactors: map[string]float64{LinkInterface: -0.5}}},
		{"nan factor", m, Degradation{LinkFactors: map[string]float64{LinkInterface: math.NaN()}}},
		{"inf factor", m, Degradation{LinkFactors: map[string]float64{LinkInterface: math.Inf(1)}}},
		{"bad link name", m, Degradation{LinkFactors: map[string]float64{"bogus": 0.5}}},
		{"half edge name", m, Degradation{LinkFactors: map[string]float64{"a->": 0.5}}},
		{"unknown edge", m, Degradation{LinkFactors: map[string]float64{"x->y": 0.5}}},
		{"uncharacterized edge", m, Degradation{LinkFactors: map[string]float64{"in->a": 0.5}}},
		{"no memory bandwidth", noMem, Degradation{LinkFactors: map[string]float64{LinkMemory: 0.5}}},
		{"nil graph", Model{}, Degradation{EnginesDown: map[string]int{"a": 1}}},
	}
	for _, tc := range cases {
		if _, err := Degrade(tc.model, tc.d); err == nil {
			t.Errorf("%s: Degrade accepted the scenario", tc.name)
		}
	}
}
