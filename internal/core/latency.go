package core

import (
	"fmt"
	"math"

	"lognic/internal/queueing"
)

// VertexTiming is the per-vertex latency decomposition the model derives
// for a given traffic profile: the Equation 11 queue parameters, the
// compute time C/A of Equation 7, and the resulting M/M/1/N queueing delay
// of Equation 12.
type VertexTiming struct {
	Name string
	// Lambda is the request arrival rate λ = BW_in·indegree/(D·g_in).
	Lambda float64
	// Mu is the request service rate μ = P_eff·indegree/(D·g_in·Σδ).
	Mu float64
	// Rho is the utilization ρ = BW_in·Σδ/P_eff.
	Rho float64
	// Compute is C/A = D·g_in·Σδ/(P_eff·indegree), seconds per request.
	Compute float64
	// Queue is Q, the mean queueing delay (seconds); zero when the vertex
	// declares no queue capacity.
	Queue float64
	// DropRate is Pro_N, the blocking probability of the vertex's queue.
	DropRate float64
}

// PathLatency is the latency of a single ingress→egress path, with its
// component breakdown (all in seconds).
type PathLatency struct {
	Vertices []string
	Weight   float64
	// Total = Queueing + Compute + Overhead + Movement.
	Total float64
	// Queueing accumulates Q_i across the path's vertices.
	Queueing float64
	// Compute accumulates C_i/A_i across the path's vertices.
	Compute float64
	// Overhead accumulates O_i across non-terminal vertices.
	Overhead float64
	// Movement accumulates g/BW across the path's edges (Equation 7).
	Movement float64
}

// LatencyReport is the result of latency modeling.
type LatencyReport struct {
	// Attainable is T_attainable: the weighted average path latency
	// (Equation 8), in seconds.
	Attainable float64
	// Paths carries each path's breakdown, heaviest weight first.
	Paths []PathLatency
	// Vertices carries per-vertex timing, keyed by vertex name.
	Vertices map[string]VertexTiming
	// DropRate is the weighted mean packet drop probability across
	// traversed queues (1 − Π(1−Pro_N) per path, weighted like latency).
	DropRate float64
}

// vertexTiming derives Equation 11's λ, μ, ρ and Equation 7's C/A for one
// vertex under this model's traffic.
//
// Note Equation 7's ÷indegree: the paper treats a vertex's in-edges as
// carrying per-edge sub-requests of one packet (each edge delivers its δ
// share of the packet's data), so per-request compute shrinks with fan-in.
// Topologies that instead *rejoin whole packets* from alternative paths
// should merge them through a zero-throughput mux vertex feeding a
// single-in-edge IP, keeping the formula's semantics intact.
//
// Relatedly, Equation 7 scales C with Σδ: an IP that sees a δ<1 slice of
// the traffic is modeled as touching δ-scaled data per request. When the
// slice instead consists of *whole packets routed to a branch* (fewer
// requests, full size each), the per-branch C and Q are understated by
// roughly the δ factor while ρ — and therefore every capacity and
// relative-comparison result — stays exact. The optimizer's split/placement
// decisions are unaffected; absolute multi-path latencies carry this
// approximation (see the cross-validation tests in internal/sim).
func (m Model) vertexTiming(v Vertex) VertexTiming {
	g := m.Graph
	vt := VertexTiming{Name: v.Name}
	indeg := float64(g.InDegree(v.Name))
	if indeg == 0 {
		return vt // ingress engines have no upstream queue/compute here
	}
	deltaIn := g.DeltaIn(v.Name)
	p := v.effectiveThroughput()
	d := float64(v.Parallelism)
	gIn := m.Traffic.Granularity
	if p > 0 && deltaIn > 0 {
		// C/A = D·g_in·Σδ / (P_eff·indegree)      (Equation 7)
		vt.Compute = d * gIn * deltaIn / (p * indeg)
		// λ = BW_in·indegree/(D·g_in); μ = 1/(C/A); ρ = BW_in·Σδ/P_eff.
		vt.Lambda = m.Traffic.IngressBW * indeg / (d * gIn)
		vt.Mu = 1 / vt.Compute
		vt.Rho = m.Traffic.IngressBW * deltaIn / p
		if v.QueueCapacity > 0 {
			switch v.QueueModel {
			case QueueMMcK:
				// Multi-server extension: Equation 7's C is the
				// per-engine service time, so the total request rate
				// λ·D feeds c = D servers of rate μ each, with room for
				// the servers plus the N-entry queue.
				q := queueing.MMcK{
					Lambda:   vt.Lambda * d,
					Mu:       vt.Mu,
					Servers:  v.Parallelism,
					Capacity: v.Parallelism + v.QueueCapacity,
				}
				vt.Queue = q.QueueingDelay()
				vt.DropRate = q.BlockingProb()
			default:
				q := queueing.MM1N{Lambda: vt.Lambda, Mu: vt.Mu, Capacity: v.QueueCapacity}
				vt.Queue = q.QueueingDelayClosedForm()
				vt.DropRate = q.BlockingProb()
			}
		}
	}
	// Rate limiters (Extension #3) are handled by the branch above: their
	// drain rate is encoded as Throughput even though they perform no
	// computation, so their finite queue models the downstream IP's
	// idleness. A limiter without a rate contributes nothing.
	return vt
}

// Latency evaluates Equations 5–8: per-path accumulation of queueing,
// compute, overhead and data-movement components, weighted across paths by
// the traffic partition.
func (m Model) Latency() (LatencyReport, error) {
	if err := m.Validate(); err != nil {
		return LatencyReport{}, err
	}
	g := m.Graph
	paths, err := g.Paths()
	if err != nil {
		return LatencyReport{}, err
	}
	if len(paths) == 0 {
		return LatencyReport{}, fmt.Errorf("core: graph %q has no ingress→egress path", g.Name())
	}
	timings := map[string]VertexTiming{}
	for _, v := range g.Vertices() {
		timings[v.Name] = m.vertexTiming(v)
	}
	rep := LatencyReport{Vertices: timings}
	for _, p := range paths {
		pl := PathLatency{Vertices: p.Vertices, Weight: p.Weight}
		deliver := 1.0
		for i, name := range p.Vertices {
			v, _ := g.Vertex(name)
			vt := timings[name]
			pl.Queueing += vt.Queue
			pl.Compute += vt.Compute
			deliver *= 1 - vt.DropRate
			if i+1 < len(p.Vertices) {
				// O_i is paid when transferring computation onward; the
				// last vertex only queues and computes (Equation 6).
				pl.Overhead += v.Overhead
				e, _ := g.Edge(name, p.Vertices[i+1])
				pl.Movement += e.moveTimePerPacket(m.Traffic.Granularity, m.Hardware)
			}
		}
		pl.Total = pl.Queueing + pl.Compute + pl.Overhead + pl.Movement
		rep.Paths = append(rep.Paths, pl)
		rep.Attainable += p.Weight * pl.Total
		rep.DropRate += p.Weight * (1 - deliver)
	}
	return rep, nil
}

// Estimate bundles throughput and latency for one model evaluation — the
// two outputs of Table 2.
type Estimate struct {
	Throughput ThroughputReport
	Latency    LatencyReport
}

// Estimate runs both analyses.
func (m Model) Estimate() (Estimate, error) {
	tr, err := m.Throughput()
	if err != nil {
		return Estimate{}, err
	}
	lr, err := m.Latency()
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Throughput: tr, Latency: lr}, nil
}

// StableLoad reports whether every queued vertex operates below saturation
// (ρ < 1) at the model's offered load; above it the finite queues drop
// traffic and the latency estimate describes the surviving packets.
func (m Model) StableLoad() (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	for _, v := range m.Graph.Vertices() {
		vt := m.vertexTiming(v)
		if vt.Rho >= 1 && v.QueueCapacity > 0 {
			return false, nil
		}
	}
	return true, nil
}

// LoadAtUtilization returns the ingress bandwidth that drives the graph's
// tightest compute constraint to the given utilization (e.g. 0.8 for the
// paper's "80% traffic load" experiments).
func (m Model) LoadAtUtilization(u float64) (float64, error) {
	if u <= 0 || !finite(u) {
		return 0, fmt.Errorf("core: invalid utilization %v", u)
	}
	sat, err := m.SaturationThroughput()
	if err != nil {
		return 0, err
	}
	if math.IsInf(sat.Attainable, 1) {
		return 0, fmt.Errorf("core: graph %q has no finite capacity constraint", m.Graph.Name())
	}
	return u * sat.Attainable, nil
}
