package core

import (
	"fmt"
	"math"
	"sort"
)

// ConstraintKind identifies which hardware entity a throughput constraint
// comes from.
type ConstraintKind int

// Constraint kinds, in the order Equation 4 lists its min() terms.
const (
	// ConstraintIngress is the offered load itself: attained throughput
	// can never exceed BW_in.
	ConstraintIngress ConstraintKind = iota
	// ConstraintIPCompute is an IP's computing capacity: P_vi / Σδ_in.
	ConstraintIPCompute
	// ConstraintEdge is a characterized IP-IP link: BW_eij / δ_eij.
	ConstraintEdge
	// ConstraintInterface is the shared SoC interface: BW_INTF / Σα.
	ConstraintInterface
	// ConstraintMemory is the shared memory subsystem: BW_MEM / Σβ.
	ConstraintMemory
)

// String names the constraint kind.
func (k ConstraintKind) String() string {
	switch k {
	case ConstraintIngress:
		return "ingress"
	case ConstraintIPCompute:
		return "ip-compute"
	case ConstraintEdge:
		return "edge-bandwidth"
	case ConstraintInterface:
		return "interface"
	case ConstraintMemory:
		return "memory"
	default:
		return fmt.Sprintf("constraint(%d)", int(k))
	}
}

// Constraint is one term of Equation 4's min(): the ingress-throughput
// ceiling imposed by a single hardware entity.
type Constraint struct {
	Kind ConstraintKind
	// Name identifies the entity: a vertex name, "from->to" for edges, or
	// "" for device-wide ceilings.
	Name string
	// Limit is the maximum ingress bandwidth (bytes/second) this entity
	// admits.
	Limit float64
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Name == "" {
		return fmt.Sprintf("%s limit %.4g B/s", c.Kind, c.Limit)
	}
	return fmt.Sprintf("%s(%s) limit %.4g B/s", c.Kind, c.Name, c.Limit)
}

// ThroughputReport is the result of throughput modeling: the attainable
// throughput and the full set of constraints, sorted tightest first, so
// callers can read off the bottleneck and how much headroom the next
// constraint leaves.
type ThroughputReport struct {
	// Attainable is P_attainable in bytes/second of ingress traffic
	// (Equation 4, additionally capped by the offered load BW_in).
	Attainable float64
	// Bottleneck is the tightest constraint.
	Bottleneck Constraint
	// Constraints lists every finite constraint, tightest first.
	Constraints []Constraint
}

// Model binds an execution graph to hardware parameters and a traffic
// profile — the full input set of Figure 4(a).
type Model struct {
	Hardware Hardware
	Graph    *Graph
	Traffic  Traffic
}

// Validate checks all three components.
func (m Model) Validate() error {
	if m.Graph == nil {
		return fmt.Errorf("core: model has no graph")
	}
	if err := m.Hardware.validate(); err != nil {
		return err
	}
	return m.Traffic.validate()
}

// Throughput evaluates Equations 1–4: for each triggered IP the compute
// ceiling P_vi/Σδ, for each characterized edge BW_eij/δ_eij, and the shared
// interface and memory ceilings BW_INTF/Σα and BW_MEM/Σβ. The attainable
// throughput is the minimum, further capped by the offered ingress rate.
func (m Model) Throughput() (ThroughputReport, error) {
	if err := m.Validate(); err != nil {
		return ThroughputReport{}, err
	}
	cs := m.capacityConstraints()
	cs = append(cs, Constraint{Kind: ConstraintIngress, Limit: m.Traffic.IngressBW})
	return reportFromConstraints(cs), nil
}

// capacityConstraints builds every load-independent term of Equation 4.
func (m Model) capacityConstraints() []Constraint {
	g := m.Graph
	var cs []Constraint
	var sumAlpha, sumBeta float64
	for _, e := range g.Edges() {
		sumAlpha += e.Alpha
		sumBeta += e.Beta
		if e.Bandwidth > 0 && e.Delta > 0 {
			cs = append(cs, Constraint{
				Kind:  ConstraintEdge,
				Name:  e.From + "->" + e.To,
				Limit: e.Bandwidth / e.Delta,
			})
		}
	}
	for _, v := range g.Vertices() {
		p := v.effectiveThroughput()
		if p <= 0 {
			continue // pure forwarding vertex: no compute ceiling
		}
		deltaIn := g.DeltaIn(v.Name)
		if deltaIn <= 0 {
			continue // nothing routed through it
		}
		cs = append(cs, Constraint{
			Kind:  ConstraintIPCompute,
			Name:  v.Name,
			Limit: p / deltaIn,
		})
	}
	if m.Hardware.InterfaceBW > 0 && sumAlpha > 0 {
		cs = append(cs, Constraint{
			Kind:  ConstraintInterface,
			Limit: m.Hardware.InterfaceBW / sumAlpha,
		})
	}
	if m.Hardware.MemoryBW > 0 && sumBeta > 0 {
		cs = append(cs, Constraint{
			Kind:  ConstraintMemory,
			Limit: m.Hardware.MemoryBW / sumBeta,
		})
	}
	return cs
}

func reportFromConstraints(cs []Constraint) ThroughputReport {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Limit < cs[j].Limit })
	if len(cs) == 0 {
		return ThroughputReport{Attainable: math.Inf(1)}
	}
	return ThroughputReport{Attainable: cs[0].Limit, Bottleneck: cs[0], Constraints: cs}
}

// SaturationThroughput reports the graph's capacity independent of the
// offered load: Equation 4's min() without the BW_in cap. It answers "how
// fast could this program go if we kept raising the input rate".
func (m Model) SaturationThroughput() (ThroughputReport, error) {
	if err := m.Validate(); err != nil {
		return ThroughputReport{}, err
	}
	return reportFromConstraints(m.capacityConstraints()), nil
}
