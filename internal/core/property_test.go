package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests over the model's structural invariants: the monotonicity
// and scaling laws Equations 1–12 imply, checked over randomized
// parameters.

// propModel builds a 2-stage pipeline from raw generator values.
func propModel(p1, p2, bwIn, gran float64, qcap int) (Model, error) {
	g, err := NewBuilder("prop").
		AddIngress("in").
		AddIP("a", p1, 2, qcap).
		AddIP("b", p2, 4, qcap).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "a", Delta: 1, Alpha: 1}).
		AddEdge(Edge{From: "a", To: "b", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(Edge{From: "b", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		return Model{}, err
	}
	return Model{
		Hardware: Hardware{InterfaceBW: 80e9, MemoryBW: 40e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: bwIn, Granularity: gran},
	}, nil
}

func decode(raw [4]uint16) (p1, p2, bwIn, gran float64, qcap int) {
	p1 = float64(raw[0]%900+100) * 1e7 // 1e9 .. 1e10
	p2 = float64(raw[1]%900+100) * 1e7 // 1e9 .. 1e10
	bwIn = float64(raw[2]%95+1) * 1e7  // up to 0.95e9 (below min capacity)
	gran = float64(raw[3]%4032) + 64   // 64 .. 4095
	qcap = int(raw[3]%48) + 4          //nolint:staticcheck // reuse entropy
	return
}

// Throughput never exceeds the tightest constraint and is monotone
// non-decreasing in any IP's compute rate.
func TestPropThroughputMonotoneInComputeRate(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		base, err := m.SaturationThroughput()
		if err != nil {
			return false
		}
		faster, err := propModel(p1*1.5, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		up, err := faster.SaturationThroughput()
		if err != nil {
			return false
		}
		return up.Attainable >= base.Attainable-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Attained throughput equals the offered load whenever the offer is below
// every capacity constraint.
func TestPropThroughputTracksOfferBelowKnee(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			return false
		}
		if bwIn >= sat.Attainable {
			return true // not below the knee; nothing to assert
		}
		rep, err := m.Throughput()
		if err != nil {
			return false
		}
		return math.Abs(rep.Attainable-bwIn) < 1e-6*bwIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Latency is monotone non-decreasing in offered load (below saturation).
func TestPropLatencyMonotoneInLoad(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		lr1, err := m.Latency()
		if err != nil {
			return false
		}
		m2 := m
		m2.Traffic.IngressBW = bwIn * 1.05
		lr2, err := m2.Latency()
		if err != nil {
			return false
		}
		return lr2.Attainable >= lr1.Attainable-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Latency decomposition is exact: total = queueing + compute + overhead +
// movement on every path, and the weighted average matches.
func TestPropLatencyDecomposition(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		lr, err := m.Latency()
		if err != nil {
			return false
		}
		var avg float64
		for _, p := range lr.Paths {
			sum := p.Queueing + p.Compute + p.Overhead + p.Movement
			if math.Abs(sum-p.Total) > 1e-12*math.Max(1, p.Total) {
				return false
			}
			avg += p.Weight * p.Total
		}
		return math.Abs(avg-lr.Attainable) < 1e-12*math.Max(1, lr.Attainable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Acceleration (A) and a pure compute-rate increase are interchangeable in
// the throughput model: γ·A·P is one effective rate.
func TestPropAccelerationEquivalence(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		// Variant 1: A = 2 on vertex a.
		va, _ := m.Graph.Vertex("a")
		va.Acceleration = 2
		g1, err := m.Graph.WithVertex(va)
		if err != nil {
			return false
		}
		m1 := m
		m1.Graph = g1
		// Variant 2: P doubled.
		m2, err := propModel(p1*2, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		r1, err := m1.SaturationThroughput()
		if err != nil {
			return false
		}
		r2, err := m2.SaturationThroughput()
		if err != nil {
			return false
		}
		return math.Abs(r1.Attainable-r2.Attainable) < 1e-6*r2.Attainable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Larger queues never increase the modeled drop rate.
func TestPropDropRateMonotoneInQueueCapacity(t *testing.T) {
	f := func(raw [4]uint16) bool {
		p1, p2, bwIn, gran, qcap := decode(raw)
		// Push the load near capacity so drops are visible.
		m, err := propModel(p1, p2, bwIn, gran, qcap)
		if err != nil {
			return false
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			return false
		}
		m.Traffic.IngressBW = 0.95 * sat.Attainable
		lr1, err := m.Latency()
		if err != nil {
			return false
		}
		bigger, err := propModel(p1, p2, m.Traffic.IngressBW, gran, qcap+16)
		if err != nil {
			return false
		}
		// propModel resets IngressBW; align it.
		bigger.Traffic.IngressBW = m.Traffic.IngressBW
		lr2, err := bigger.Latency()
		if err != nil {
			return false
		}
		return lr2.DropRate <= lr1.DropRate+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
