package core

// This file implements degraded-mode modeling: deriving the model inputs
// of a partially-failed SmartNIC from a healthy model plus a fault
// scenario. The paper evaluates healthy hardware only, but LogNIC's core
// question — which component bottlenecks first — matters most to an
// operator exactly when engines die or links flap. Degrade keeps the
// analytical machinery unchanged by folding the scenario into the
// parameters it already understands: a vertex that lost k of its D
// engines keeps D−k engines and (D−k)/D of its aggregate compute
// throughput P_vi, and a degraded link keeps factor·BW. The simulator's
// counterpart is sim.FaultSchedule (sim.PermanentFaults bridges the two),
// and the degraded model is cross-validated against faulted simulation
// runs in internal/sim.

import (
	"fmt"
	"math"
)

// Link names addressing the shared transmission resources in a
// Degradation (per-edge dedicated links are addressed as "from->to").
const (
	// LinkInterface addresses BW_INTF.
	LinkInterface = "interface"
	// LinkMemory addresses BW_MEM.
	LinkMemory = "memory"
)

// Degradation is a steady-state fault scenario: which engines are gone
// and which links run below nominal bandwidth.
type Degradation struct {
	// EnginesDown maps vertex name → engines lost (0 < lost < D_vi).
	EnginesDown map[string]int
	// LinkFactors maps a link name — LinkInterface, LinkMemory, or
	// "from->to" for an edge with a characterized bandwidth — to the
	// factor scaling its bandwidth. Factors must be positive and finite;
	// values below 1 degrade.
	LinkFactors map[string]float64
}

// Empty reports whether the scenario changes nothing.
func (d Degradation) Empty() bool {
	return len(d.EnginesDown) == 0 && len(d.LinkFactors) == 0
}

// Validate checks the scenario against a model.
func (d Degradation) Validate(m Model) error {
	if m.Graph == nil {
		return fmt.Errorf("core: degradation: model has no graph")
	}
	for name, lost := range d.EnginesDown {
		v, ok := m.Graph.Vertex(name)
		if !ok {
			return fmt.Errorf("core: degradation: unknown vertex %q", name)
		}
		if lost <= 0 {
			return fmt.Errorf("core: degradation: vertex %q: engines lost must be positive, got %d", name, lost)
		}
		if lost >= v.Parallelism {
			return fmt.Errorf("core: degradation: vertex %q: losing %d of %d engines leaves none", name, lost, v.Parallelism)
		}
	}
	for link, f := range d.LinkFactors {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("core: degradation: link %q: invalid factor %v", link, f)
		}
		switch link {
		case LinkInterface:
			if m.Hardware.InterfaceBW <= 0 {
				return fmt.Errorf("core: degradation: model has no interface bandwidth to degrade")
			}
		case LinkMemory:
			if m.Hardware.MemoryBW <= 0 {
				return fmt.Errorf("core: degradation: model has no memory bandwidth to degrade")
			}
		default:
			from, to, ok := splitEdgeName(link)
			if !ok {
				return fmt.Errorf("core: degradation: bad link name %q (want %q, %q, or \"from->to\")", link, LinkInterface, LinkMemory)
			}
			e, found := m.Graph.Edge(from, to)
			if !found {
				return fmt.Errorf("core: degradation: unknown edge %q", link)
			}
			if e.Bandwidth <= 0 {
				return fmt.Errorf("core: degradation: edge %q has no characterized bandwidth to degrade", link)
			}
		}
	}
	return nil
}

// splitEdgeName parses a "from->to" link name.
func splitEdgeName(link string) (from, to string, ok bool) {
	for i := 0; i+1 < len(link); i++ {
		if link[i] == '-' && link[i+1] == '>' {
			return link[:i], link[i+2:], i > 0 && i+2 < len(link)
		}
	}
	return "", "", false
}

// Degrade returns a copy of the model with the fault scenario folded into
// its parameters, so estimation mode predicts degraded-mode throughput,
// bottleneck, and latency with the unmodified Equations 1–12:
//
//   - a vertex losing k of D engines keeps Parallelism D−k and
//     Throughput·(D−k)/D — P_vi aggregates the D engines, and the
//     survivors are no faster than before;
//   - LinkInterface / LinkMemory factors scale BW_INTF / BW_MEM;
//   - "from->to" factors scale that edge's characterized bandwidth.
func Degrade(m Model, d Degradation) (Model, error) {
	if err := d.Validate(m); err != nil {
		return Model{}, err
	}
	out := m
	if f, ok := d.LinkFactors[LinkInterface]; ok {
		out.Hardware.InterfaceBW *= f
	}
	if f, ok := d.LinkFactors[LinkMemory]; ok {
		out.Hardware.MemoryBW *= f
	}
	vertices := m.Graph.Vertices()
	for i, v := range vertices {
		lost, ok := d.EnginesDown[v.Name]
		if !ok {
			continue
		}
		remain := v.Parallelism - lost
		v.Throughput *= float64(remain) / float64(v.Parallelism)
		v.Parallelism = remain
		vertices[i] = v
	}
	edges := m.Graph.Edges()
	for i, e := range edges {
		if f, ok := d.LinkFactors[e.From+"->"+e.To]; ok {
			edges[i].Bandwidth = e.Bandwidth * f
		}
	}
	g, err := NewGraph(m.Graph.Name(), vertices, edges)
	if err != nil {
		return Model{}, fmt.Errorf("core: degradation produced an invalid graph: %w", err)
	}
	out.Graph = g
	return out, nil
}
