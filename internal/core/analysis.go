package core

import (
	"fmt"
	"sort"
)

// This file provides design-space exploration helpers on top of the base
// model: parameter sensitivity analysis (which knob moves the estimate
// most — the "suggest optimization opportunities" use case of §2.3) and
// recirculation unrolling (the RX-pipeline recirculate path of Figure 1,
// expressed in DAG form).

// ParamKind identifies a configurable model parameter for sensitivity
// analysis (Table 2's CONF rows plus the hardware bandwidths).
type ParamKind int

// Sensitivity parameter kinds.
const (
	// ParamIngressBW is BW_in.
	ParamIngressBW ParamKind = iota
	// ParamGranularity is g_in.
	ParamGranularity
	// ParamInterfaceBW is BW_INTF.
	ParamInterfaceBW
	// ParamMemoryBW is BW_MEM.
	ParamMemoryBW
	// ParamVertexThroughput is one vertex's P_vi.
	ParamVertexThroughput
	// ParamVertexParallelism is one vertex's D_vi.
	ParamVertexParallelism
	// ParamVertexQueue is one vertex's N_vi.
	ParamVertexQueue
)

// String names the parameter kind.
func (k ParamKind) String() string {
	switch k {
	case ParamIngressBW:
		return "ingress-bw"
	case ParamGranularity:
		return "granularity"
	case ParamInterfaceBW:
		return "interface-bw"
	case ParamMemoryBW:
		return "memory-bw"
	case ParamVertexThroughput:
		return "vertex-throughput"
	case ParamVertexParallelism:
		return "vertex-parallelism"
	case ParamVertexQueue:
		return "vertex-queue"
	default:
		return fmt.Sprintf("param(%d)", int(k))
	}
}

// Sensitivity is the estimated response of the model outputs to a relative
// perturbation of one parameter.
type Sensitivity struct {
	// Param identifies the perturbed parameter.
	Param ParamKind
	// Vertex names the vertex for per-vertex parameters ("" otherwise).
	Vertex string
	// ThroughputElasticity ≈ (ΔP/P)/(Δx/x): the relative throughput
	// change per relative parameter increase.
	ThroughputElasticity float64
	// LatencyElasticity ≈ (ΔT/T)/(Δx/x).
	LatencyElasticity float64
}

// perturb builds a copy of the model with one parameter scaled by f (or
// stepped, for integer parameters).
func (m Model) perturb(s Sensitivity, f float64) (Model, bool, error) {
	out := m
	switch s.Param {
	case ParamIngressBW:
		out.Traffic.IngressBW *= f
	case ParamGranularity:
		out.Traffic.Granularity *= f
	case ParamInterfaceBW:
		if m.Hardware.InterfaceBW == 0 {
			return out, false, nil
		}
		out.Hardware.InterfaceBW *= f
	case ParamMemoryBW:
		if m.Hardware.MemoryBW == 0 {
			return out, false, nil
		}
		out.Hardware.MemoryBW *= f
	case ParamVertexThroughput, ParamVertexParallelism, ParamVertexQueue:
		v, ok := m.Graph.Vertex(s.Vertex)
		if !ok {
			return out, false, fmt.Errorf("core: sensitivity: unknown vertex %q", s.Vertex)
		}
		switch s.Param {
		case ParamVertexThroughput:
			if v.Throughput == 0 {
				return out, false, nil
			}
			v.Throughput *= f
		case ParamVertexParallelism:
			step := int(float64(v.Parallelism)*(f-1) + 0.5)
			if step == 0 {
				step = 1
			}
			v.Parallelism += step
			if v.Parallelism < 1 {
				return out, false, nil
			}
		case ParamVertexQueue:
			if v.QueueCapacity == 0 {
				return out, false, nil
			}
			step := int(float64(v.QueueCapacity)*(f-1) + 0.5)
			if step == 0 {
				step = 1
			}
			v.QueueCapacity += step
			if v.QueueCapacity < 1 {
				return out, false, nil
			}
		}
		g, err := m.Graph.WithVertex(v)
		if err != nil {
			return out, false, err
		}
		out.Graph = g
	default:
		return out, false, fmt.Errorf("core: sensitivity: unknown parameter %v", s.Param)
	}
	return out, true, nil
}

// SensitivityOptions tunes the analysis.
type SensitivityOptions struct {
	// Step is the relative perturbation (default 0.05 = +5%).
	Step float64
}

// Sensitivities estimates, by finite differences, how the attainable
// throughput and latency respond to each configurable parameter, sorted by
// descending absolute latency elasticity. Parameters that are unset on the
// model (zero bandwidths, queueless vertices) are skipped.
func (m Model) Sensitivities(opts SensitivityOptions) ([]Sensitivity, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	step := opts.Step
	if step <= 0 {
		step = 0.05
	}
	base, err := m.Estimate()
	if err != nil {
		return nil, err
	}
	var targets []Sensitivity
	targets = append(targets,
		Sensitivity{Param: ParamIngressBW},
		Sensitivity{Param: ParamGranularity},
		Sensitivity{Param: ParamInterfaceBW},
		Sensitivity{Param: ParamMemoryBW},
	)
	for _, v := range m.Graph.Vertices() {
		if v.Kind != KindIP && v.Kind != KindRateLimiter {
			continue
		}
		targets = append(targets,
			Sensitivity{Param: ParamVertexThroughput, Vertex: v.Name},
			Sensitivity{Param: ParamVertexParallelism, Vertex: v.Name},
			Sensitivity{Param: ParamVertexQueue, Vertex: v.Name},
		)
	}
	var out []Sensitivity
	for _, tgt := range targets {
		pm, ok, err := m.perturb(tgt, 1+step)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		est, err := pm.Estimate()
		if err != nil {
			// Perturbation made the model infeasible; skip.
			continue
		}
		if base.Throughput.Attainable > 0 {
			tgt.ThroughputElasticity = (est.Throughput.Attainable/base.Throughput.Attainable - 1) / step
		}
		if base.Latency.Attainable > 0 {
			tgt.LatencyElasticity = (est.Latency.Attainable/base.Latency.Attainable - 1) / step
		}
		out = append(out, tgt)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return abs(out[i].LatencyElasticity) > abs(out[j].LatencyElasticity)
	})
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// UnrollRecirculation expresses the RX-pipeline recirculate path of
// Figure 1 in DAG form: the named vertex is replicated `times` extra
// times ("name#1", "name#2", ...) in series, each pass receiving the
// same δ/α/β as the vertex's original in-edges and a 1/(times+1) share of
// the physical engine (γ divided across passes). A packet that would loop
// through the vertex k+1 times instead flows through the k+1 replicas.
func UnrollRecirculation(g *Graph, name string, times int) (*Graph, error) {
	orig, ok := g.Vertex(name)
	if !ok {
		return nil, fmt.Errorf("core: UnrollRecirculation: unknown vertex %q", name)
	}
	if orig.Kind != KindIP {
		return nil, fmt.Errorf("core: can only recirculate through IP vertices")
	}
	if times < 1 {
		return nil, fmt.Errorf("core: recirculation count %d < 1", times)
	}
	passes := times + 1
	// Each pass owns an equal share of the physical engine.
	share := orig.Partition / float64(passes)

	vertices := make([]Vertex, 0, len(g.Vertices())+times)
	for _, v := range g.Vertices() {
		if v.Name == name {
			v.Partition = share
		}
		vertices = append(vertices, v)
	}
	replicas := make([]string, 0, times)
	for i := 1; i <= times; i++ {
		r := orig
		r.Name = fmt.Sprintf("%s#%d", name, i)
		r.Partition = share
		if _, dup := g.Vertex(r.Name); dup {
			return nil, fmt.Errorf("core: replica name %q already exists", r.Name)
		}
		vertices = append(vertices, r)
		replicas = append(replicas, r.Name)
	}

	// Rewire: out-edges of the original move to the last replica; the
	// chain original -> #1 -> ... -> #times carries the original's
	// aggregate incoming fractions.
	deltaIn, alphaIn, betaIn := 0.0, 0.0, 0.0
	for _, e := range g.InEdges(name) {
		deltaIn += e.Delta
		alphaIn += e.Alpha
		betaIn += e.Beta
	}
	last := replicas[len(replicas)-1]
	var edges []Edge
	for _, e := range g.Edges() {
		if e.From == name {
			e.From = last
		}
		edges = append(edges, e)
	}
	prev := name
	for _, r := range replicas {
		edges = append(edges, Edge{
			From: prev, To: r,
			Delta: deltaIn, Alpha: alphaIn, Beta: betaIn,
		})
		prev = r
	}
	return NewGraph(g.Name(), vertices, edges)
}
