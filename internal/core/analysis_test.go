package core

import (
	"math"
	"testing"
)

func sensModel(t *testing.T) Model {
	t.Helper()
	g, err := NewBuilder("sens").
		AddIngress("in").
		AddIP("ip", 1e9, 2, 32).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 1, Alpha: 1}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		Hardware: Hardware{InterfaceBW: 50e9, MemoryBW: 100e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 0.8e9, Granularity: 1024},
	}
}

func findSens(out []Sensitivity, k ParamKind, vertex string) (Sensitivity, bool) {
	for _, s := range out {
		if s.Param == k && s.Vertex == vertex {
			return s, true
		}
	}
	return Sensitivity{}, false
}

func TestSensitivitiesDirections(t *testing.T) {
	m := sensModel(t)
	out, err := m.Sensitivities(SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no sensitivities")
	}
	// More offered load raises latency (queueing at ρ=0.8) and raises
	// attained throughput (ingress-bound).
	in, ok := findSens(out, ParamIngressBW, "")
	if !ok {
		t.Fatal("ingress sensitivity missing")
	}
	if in.LatencyElasticity <= 0 {
		t.Errorf("latency should rise with load: %v", in.LatencyElasticity)
	}
	if in.ThroughputElasticity <= 0 {
		t.Errorf("throughput should rise with offered load: %v", in.ThroughputElasticity)
	}
	// A faster IP cuts latency; throughput unchanged (ingress-bound).
	p, ok := findSens(out, ParamVertexThroughput, "ip")
	if !ok {
		t.Fatal("vertex throughput sensitivity missing")
	}
	if p.LatencyElasticity >= 0 {
		t.Errorf("latency should fall with a faster IP: %v", p.LatencyElasticity)
	}
	if math.Abs(p.ThroughputElasticity) > 1e-9 {
		t.Errorf("throughput should be insensitive below the knee: %v", p.ThroughputElasticity)
	}
	// Sorted by |latency elasticity| descending.
	for i := 1; i < len(out); i++ {
		if math.Abs(out[i].LatencyElasticity) > math.Abs(out[i-1].LatencyElasticity)+1e-12 {
			t.Fatal("not sorted by latency elasticity")
		}
	}
}

func TestSensitivitiesSkipUnsetParams(t *testing.T) {
	m := sensModel(t)
	m.Hardware.MemoryBW = 0
	out, err := m.Sensitivities(SensitivityOptions{Step: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findSens(out, ParamMemoryBW, ""); ok {
		t.Fatal("unset memory bandwidth should be skipped")
	}
}

func TestSensitivitiesInvalidModel(t *testing.T) {
	if _, err := (Model{}).Sensitivities(SensitivityOptions{}); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestParamKindString(t *testing.T) {
	names := map[ParamKind]string{
		ParamIngressBW:         "ingress-bw",
		ParamGranularity:       "granularity",
		ParamInterfaceBW:       "interface-bw",
		ParamMemoryBW:          "memory-bw",
		ParamVertexThroughput:  "vertex-throughput",
		ParamVertexParallelism: "vertex-parallelism",
		ParamVertexQueue:       "vertex-queue",
		ParamKind(99):          "param(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestUnrollRecirculation(t *testing.T) {
	m := sensModel(t)
	g2, err := UnrollRecirculation(m.Graph, "ip", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Replicas exist with γ split three ways.
	for _, name := range []string{"ip", "ip#1", "ip#2"} {
		v, ok := g2.Vertex(name)
		if !ok {
			t.Fatalf("vertex %q missing", name)
		}
		if math.Abs(v.Partition-1.0/3) > 1e-12 {
			t.Fatalf("%s partition = %v, want 1/3", name, v.Partition)
		}
	}
	// Chain rewired: in → ip → ip#1 → ip#2 → out.
	paths, err := g2.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	want := []string{"in", "ip", "ip#1", "ip#2", "out"}
	for i, v := range want {
		if paths[0].Vertices[i] != v {
			t.Fatalf("path = %v", paths[0].Vertices)
		}
	}
	// Throughput: three passes through a γ=1/3 engine → capacity P/3.
	m2 := m
	m2.Graph = g2
	rep, err := m2.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Attainable-1e9/3) > 1e-3 {
		t.Fatalf("recirculated capacity = %v, want P/3", rep.Attainable)
	}
}

func TestUnrollRecirculationErrors(t *testing.T) {
	m := sensModel(t)
	if _, err := UnrollRecirculation(m.Graph, "ghost", 1); err == nil {
		t.Fatal("unknown vertex should fail")
	}
	if _, err := UnrollRecirculation(m.Graph, "in", 1); err == nil {
		t.Fatal("non-IP vertex should fail")
	}
	if _, err := UnrollRecirculation(m.Graph, "ip", 0); err == nil {
		t.Fatal("zero passes should fail")
	}
}
