package core

import (
	"math"
	"testing"
	"testing/quick"

	"lognic/internal/queueing"
)

// latModel builds a simple model: in -> ip -> out, P = 1 GB/s, packet 1 KB,
// offered at the given utilization of the IP.
func latModel(t *testing.T, util float64, qcap int) Model {
	t.Helper()
	g := linearGraph(t, 1e9, 1, qcap)
	return Model{
		Hardware: Hardware{InterfaceBW: 100e9, MemoryBW: 100e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: util * 1e9, Granularity: 1024},
	}
}

func TestLatencyComputeComponent(t *testing.T) {
	m := latModel(t, 0.1, 0)
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	// C/A = D·g·Σδ/(P·indeg) = 1·1024·1/(1e9·1) = 1.024 µs.
	vt := rep.Vertices["ip"]
	if !approx(vt.Compute, 1024/1e9, 1e-12) {
		t.Fatalf("Compute = %v, want 1.024e-6", vt.Compute)
	}
	if vt.Queue != 0 {
		t.Fatalf("Queue = %v, want 0 when capacity unset", vt.Queue)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d", len(rep.Paths))
	}
	p := rep.Paths[0]
	if !approx(p.Total, p.Queueing+p.Compute+p.Overhead+p.Movement, 1e-12) {
		t.Fatal("component sum mismatch")
	}
	if !approx(rep.Attainable, p.Total, 1e-12) {
		t.Fatal("single path should equal weighted average")
	}
}

func TestLatencyMovementComponent(t *testing.T) {
	// g/BW per edge: 1024·α/BW_INTF + 1024·β/BW_MEM.
	g, err := NewBuilder("move").
		AddIngress("in").
		AddIP("ip", 1e12, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{
		Hardware: Hardware{InterfaceBW: 10e9, MemoryBW: 5e9},
		Graph:    g,
		Traffic:  Traffic{IngressBW: 1e9, Granularity: 1024},
	}
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	want := 1024.0/10e9 + 1024.0/5e9 + 1024.0/10e9
	if !approx(rep.Paths[0].Movement, want, 1e-12) {
		t.Fatalf("Movement = %v, want %v", rep.Paths[0].Movement, want)
	}
}

func TestLatencyExplicitEdgeBandwidth(t *testing.T) {
	// An edge with no medium fractions but a characterized bandwidth
	// charges g·δ/BW.
	g, err := NewBuilder("exp").
		AddIngress("in").
		AddIP("ip", 1e12, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "ip", Delta: 1, Bandwidth: 2e9}).
		AddEdge(Edge{From: "ip", To: "out", Delta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 1e9, Granularity: 4096}}
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Paths[0].Movement, 4096/2e9, 1e-12) {
		t.Fatalf("Movement = %v, want %v", rep.Paths[0].Movement, 4096/2e9)
	}
}

func TestLatencyOverheadComponent(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	v, _ := g.Vertex("ip")
	v.Overhead = 5e-6
	g2, _ := g.WithVertex(v)
	m := Model{Graph: g2, Traffic: Traffic{IngressBW: 1e8, Granularity: 1024}}
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	// ip is not terminal (edge to egress exists) so O is paid once.
	if !approx(rep.Paths[0].Overhead, 5e-6, 1e-12) {
		t.Fatalf("Overhead = %v, want 5e-6", rep.Paths[0].Overhead)
	}
}

func TestLatencyQueueingMatchesMM1N(t *testing.T) {
	m := latModel(t, 0.8, 16)
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	vt := rep.Vertices["ip"]
	// Cross-check against a hand-built queue with Equation 11 parameters.
	q := queueing.MM1N{
		Lambda:   0.8e9 * 1 / (1 * 1024),
		Mu:       1e9 * 1 / (1 * 1024 * 1),
		Capacity: 16,
	}
	if !approx(vt.Lambda, q.Lambda, 1e-12) || !approx(vt.Mu, q.Mu, 1e-12) {
		t.Fatalf("λ=%v µ=%v, want λ=%v µ=%v", vt.Lambda, vt.Mu, q.Lambda, q.Mu)
	}
	if !approx(vt.Rho, 0.8, 1e-12) {
		t.Fatalf("ρ = %v, want 0.8", vt.Rho)
	}
	if !approx(vt.Queue, q.QueueingDelayClosedForm(), 1e-12) {
		t.Fatalf("Q = %v, want %v", vt.Queue, q.QueueingDelayClosedForm())
	}
	if !approx(vt.DropRate, q.BlockingProb(), 1e-12) {
		t.Fatalf("drop = %v, want %v", vt.DropRate, q.BlockingProb())
	}
	if rep.DropRate <= 0 {
		t.Fatal("report drop rate should be positive at 80% load")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	prev := 0.0
	for _, u := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		rep, err := latModel(t, u, 32).Latency()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Attainable < prev {
			t.Fatalf("latency decreased with load at u=%v", u)
		}
		prev = rep.Attainable
	}
}

func TestLatencyParallelismReducesQueueing(t *testing.T) {
	// Higher D at the same P reduces λ per engine, cutting the queueing
	// term; compute per request rises but the knee moves right. At a fixed
	// moderate load the total should not explode with D.
	g := linearGraph(t, 1e9, 1, 16)
	for d := 1; d <= 8; d *= 2 {
		v, _ := g.Vertex("ip")
		v.Parallelism = d
		g2, _ := g.WithVertex(v)
		m := Model{Graph: g2, Traffic: Traffic{IngressBW: 0.5e9, Granularity: 1024}}
		rep, err := m.Latency()
		if err != nil {
			t.Fatal(err)
		}
		vt := rep.Vertices["ip"]
		if !approx(vt.Rho, 0.5, 1e-12) {
			t.Fatalf("ρ must be independent of D (Equation 11); got %v at D=%d", vt.Rho, d)
		}
		wantCompute := float64(d) * 1024 / 1e9
		if !approx(vt.Compute, wantCompute, 1e-12) {
			t.Fatalf("compute = %v, want %v at D=%d", vt.Compute, wantCompute, d)
		}
	}
}

func TestLatencyMultiPathWeighting(t *testing.T) {
	// 70% fast path, 30% slow path.
	g, err := NewBuilder("split").
		AddIngress("in").
		AddIP("fast", 10e9, 1, 0).
		AddIP("slow", 0.1e9, 1, 0).
		AddEgress("out").
		AddEdge(Edge{From: "in", To: "fast", Delta: 0.7, Alpha: 0.7}).
		AddEdge(Edge{From: "in", To: "slow", Delta: 0.3, Alpha: 0.3}).
		AddEdge(Edge{From: "fast", To: "out", Delta: 0.7, Alpha: 0.7}).
		AddEdge(Edge{From: "slow", To: "out", Delta: 0.3, Alpha: 0.3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 1e8, Granularity: 1024}}
	rep, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 2 {
		t.Fatalf("paths = %d", len(rep.Paths))
	}
	var want float64
	for _, p := range rep.Paths {
		want += p.Weight * p.Total
	}
	if !approx(rep.Attainable, want, 1e-12) {
		t.Fatalf("Attainable = %v, want %v", rep.Attainable, want)
	}
	// The fast path must be faster.
	var fast, slow PathLatency
	for _, p := range rep.Paths {
		if p.Vertices[1] == "fast" {
			fast = p
		} else {
			slow = p
		}
	}
	if fast.Total >= slow.Total {
		t.Fatalf("fast %v >= slow %v", fast.Total, slow.Total)
	}
	if !approx(fast.Weight, 0.7, 1e-12) || !approx(slow.Weight, 0.3, 1e-12) {
		t.Fatalf("weights: fast=%v slow=%v", fast.Weight, slow.Weight)
	}
}

func TestEstimateBundles(t *testing.T) {
	m := latModel(t, 0.5, 8)
	est, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := m.Throughput()
	lr, _ := m.Latency()
	if est.Throughput.Attainable != tr.Attainable {
		t.Fatal("Estimate throughput mismatch")
	}
	if est.Latency.Attainable != lr.Attainable {
		t.Fatal("Estimate latency mismatch")
	}
}

func TestStableLoad(t *testing.T) {
	ok, err := latModel(t, 0.8, 16).StableLoad()
	if err != nil || !ok {
		t.Fatalf("80%% load should be stable: ok=%v err=%v", ok, err)
	}
	ok, err = latModel(t, 1.5, 16).StableLoad()
	if err != nil || ok {
		t.Fatalf("150%% load should be unstable: ok=%v err=%v", ok, err)
	}
}

func TestLoadAtUtilization(t *testing.T) {
	m := latModel(t, 0.5, 0)
	bw, err := m.LoadAtUtilization(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(bw, 0.8e9, 1e-12) {
		t.Fatalf("LoadAtUtilization = %v, want 8e8", bw)
	}
	if _, err := m.LoadAtUtilization(0); err == nil {
		t.Fatal("expected error for u=0")
	}
	if _, err := m.LoadAtUtilization(math.NaN()); err == nil {
		t.Fatal("expected error for NaN")
	}
}

func TestLatencyNonNegativeProperty(t *testing.T) {
	f := func(uRaw, gRaw, qRaw uint16) bool {
		u := float64(uRaw%120)/100 + 0.01 // 0.01..1.2 utilization
		gran := float64(gRaw%4096) + 64
		qcap := int(qRaw % 64)
		g, err := NewBuilder("p").
			AddIngress("in").
			AddIP("ip", 1e9, 1, qcap).
			AddEgress("out").
			Connect("in", "ip", 1).
			Connect("ip", "out", 1).
			Build()
		if err != nil {
			return false
		}
		m := Model{
			Hardware: Hardware{InterfaceBW: 50e9},
			Graph:    g,
			Traffic:  Traffic{IngressBW: u * 1e9, Granularity: gran},
		}
		rep, err := m.Latency()
		if err != nil {
			return false
		}
		if rep.Attainable < 0 || math.IsNaN(rep.Attainable) || math.IsInf(rep.Attainable, 0) {
			return false
		}
		return rep.DropRate >= 0 && rep.DropRate <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
