package core

import (
	"fmt"
	"sort"

	"lognic/internal/graph"
)

// Graph is a validated LogNIC execution graph: a DAG whose vertices are IP
// blocks plus ingress/egress engines and whose edges are data movements
// (paper §3.3). Construct with NewGraph or incrementally with a Builder.
type Graph struct {
	name     string
	vertices map[string]Vertex
	order    []string // vertex insertion order
	edges    []Edge
	edgeIdx  map[[2]string]int
	dag      *graph.Directed
}

// Builder assembles a Graph incrementally; errors accumulate and surface at
// Build so call sites stay linear.
type Builder struct {
	name     string
	vertices []Vertex
	edges    []Edge
	errs     []error
}

// NewBuilder returns a Builder for a named execution graph.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddVertex appends a vertex.
func (b *Builder) AddVertex(v Vertex) *Builder {
	b.vertices = append(b.vertices, v)
	return b
}

// AddIngress appends an ingress engine vertex with the given name.
func (b *Builder) AddIngress(name string) *Builder {
	return b.AddVertex(Vertex{Name: name, Kind: KindIngress})
}

// AddEgress appends an egress engine vertex with the given name.
func (b *Builder) AddEgress(name string) *Builder {
	return b.AddVertex(Vertex{Name: name, Kind: KindEgress})
}

// AddIP appends an IP vertex with the given compute throughput
// (bytes/second), parallelism degree and queue capacity; further fields can
// be set with AddVertex instead.
func (b *Builder) AddIP(name string, throughput float64, parallelism, queueCap int) *Builder {
	return b.AddVertex(Vertex{
		Name:          name,
		Kind:          KindIP,
		Throughput:    throughput,
		Parallelism:   parallelism,
		QueueCapacity: queueCap,
	})
}

// AddEdge appends an edge.
func (b *Builder) AddEdge(e Edge) *Builder {
	b.edges = append(b.edges, e)
	return b
}

// Connect appends a plain edge carrying the full traffic (δ=frac) over the
// interface medium (α=frac).
func (b *Builder) Connect(from, to string, frac float64) *Builder {
	return b.AddEdge(Edge{From: from, To: to, Delta: frac, Alpha: frac})
}

// Build validates and freezes the graph.
func (b *Builder) Build() (*Graph, error) {
	return NewGraph(b.name, b.vertices, b.edges)
}

// NewGraph validates vertices and edges and returns an immutable execution
// graph. Rules enforced (beyond per-field validation):
//   - at least one ingress and one egress vertex;
//   - vertex names unique, edge endpoints declared, no duplicate edges;
//   - the graph is a DAG;
//   - every vertex lies on some ingress→egress path (no dead data ends);
//   - ingress vertices have no incoming edges, egress no outgoing.
func NewGraph(name string, vertices []Vertex, edges []Edge) (*Graph, error) {
	if name == "" {
		name = "graph"
	}
	g := &Graph{
		name:     name,
		vertices: make(map[string]Vertex, len(vertices)),
		edgeIdx:  make(map[[2]string]int, len(edges)),
		dag:      graph.New(),
	}
	var ingress, egress int
	for _, v := range vertices {
		v = v.normalized()
		if err := v.validate(); err != nil {
			return nil, err
		}
		if _, dup := g.vertices[v.Name]; dup {
			return nil, fmt.Errorf("core: duplicate vertex %q", v.Name)
		}
		g.vertices[v.Name] = v
		g.order = append(g.order, v.Name)
		g.dag.AddVertex(v.Name)
		switch v.Kind {
		case KindIngress:
			ingress++
		case KindEgress:
			egress++
		}
	}
	if ingress == 0 {
		return nil, fmt.Errorf("core: graph %q has no ingress vertex", name)
	}
	if egress == 0 {
		return nil, fmt.Errorf("core: graph %q has no egress vertex", name)
	}
	for _, e := range edges {
		if err := e.validate(); err != nil {
			return nil, err
		}
		if _, ok := g.vertices[e.From]; !ok {
			return nil, fmt.Errorf("core: edge references unknown vertex %q", e.From)
		}
		if _, ok := g.vertices[e.To]; !ok {
			return nil, fmt.Errorf("core: edge references unknown vertex %q", e.To)
		}
		key := [2]string{e.From, e.To}
		if _, dup := g.edgeIdx[key]; dup {
			return nil, fmt.Errorf("core: duplicate edge %s->%s", e.From, e.To)
		}
		if g.vertices[e.To].Kind == KindIngress {
			return nil, fmt.Errorf("core: edge %s->%s enters an ingress engine", e.From, e.To)
		}
		if g.vertices[e.From].Kind == KindEgress {
			return nil, fmt.Errorf("core: edge %s->%s leaves an egress engine", e.From, e.To)
		}
		if err := g.dag.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
		g.edgeIdx[key] = len(g.edges)
		g.edges = append(g.edges, e)
	}
	if !g.dag.IsDAG() {
		return nil, fmt.Errorf("core: graph %q contains a cycle", name)
	}
	// Every vertex must be reachable from an ingress and reach an egress.
	fromIngress := map[string]bool{}
	for _, v := range g.order {
		if g.vertices[v].Kind == KindIngress {
			for r := range g.dag.Reachable(v) {
				fromIngress[r] = true
			}
		}
	}
	reversed := g.reverse()
	toEgress := map[string]bool{}
	for _, v := range g.order {
		if g.vertices[v].Kind == KindEgress {
			for r := range reversed.Reachable(v) {
				toEgress[r] = true
			}
		}
	}
	for _, v := range g.order {
		if !fromIngress[v] {
			return nil, fmt.Errorf("core: vertex %q unreachable from any ingress", v)
		}
		if !toEgress[v] {
			return nil, fmt.Errorf("core: vertex %q cannot reach any egress", v)
		}
	}
	return g, nil
}

func (g *Graph) reverse() *graph.Directed {
	r := graph.New()
	for _, v := range g.order {
		r.AddVertex(v)
	}
	for _, e := range g.edges {
		_ = r.AddEdge(e.To, e.From)
	}
	return r
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Vertices returns the vertices in insertion order.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.vertices[n])
	}
	return out
}

// Vertex returns the named vertex.
func (g *Graph) Vertex(name string) (Vertex, bool) {
	v, ok := g.vertices[name]
	return v, ok
}

// Edges returns the edges in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Edge returns the edge between two vertices.
func (g *Graph) Edge(from, to string) (Edge, bool) {
	i, ok := g.edgeIdx[[2]string{from, to}]
	if !ok {
		return Edge{}, false
	}
	return g.edges[i], true
}

// InEdges returns the edges entering a vertex, ordered by source insertion.
func (g *Graph) InEdges(name string) []Edge {
	var out []Edge
	for _, p := range g.dag.Predecessors(name) {
		e, _ := g.Edge(p, name)
		out = append(out, e)
	}
	return out
}

// OutEdges returns the edges leaving a vertex.
func (g *Graph) OutEdges(name string) []Edge {
	var out []Edge
	for _, s := range g.dag.Successors(name) {
		e, _ := g.Edge(name, s)
		out = append(out, e)
	}
	return out
}

// InDegree returns the number of edges entering a vertex — the
// indegree(v_i) of Equations 7 and 11.
func (g *Graph) InDegree(name string) int { return g.dag.InDegree(name) }

// DeltaIn returns Σ_j δ_{e_ji}, the total incoming data-transfer fraction
// of a vertex.
func (g *Graph) DeltaIn(name string) float64 {
	sum := 0.0
	for _, e := range g.InEdges(name) {
		sum += e.Delta
	}
	return sum
}

// Ingresses returns ingress vertex names in insertion order.
func (g *Graph) Ingresses() []string { return g.byKind(KindIngress) }

// Egresses returns egress vertex names in insertion order.
func (g *Graph) Egresses() []string { return g.byKind(KindEgress) }

func (g *Graph) byKind(k VertexKind) []string {
	var out []string
	for _, n := range g.order {
		if g.vertices[n].Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// maxPaths caps path enumeration; evaluation graphs are tiny, so hitting
// this means a malformed input.
const maxPaths = 4096

// Paths enumerates every ingress→egress path, each with its traffic weight
// w_Pk. The weight of a path is the product over its vertices of the branch
// fraction taken at each fan-out: δ_e / Σ_out δ (paper §3.6, "weight is
// calculated using traffic partition parameters"). Weights are normalized
// to sum to 1.
func (g *Graph) Paths() ([]Path, error) {
	var all []Path
	for _, in := range g.Ingresses() {
		for _, out := range g.Egresses() {
			ps, err := g.dag.Paths(in, out, maxPaths)
			if err != nil {
				return nil, err
			}
			for _, p := range ps {
				w := 1.0
				for i := 0; i+1 < len(p); i++ {
					e, _ := g.Edge(p[i], p[i+1])
					total := 0.0
					for _, oe := range g.OutEdges(p[i]) {
						total += oe.Delta
					}
					if total > 0 {
						w *= e.Delta / total
					}
				}
				all = append(all, Path{Vertices: p, Weight: w})
			}
		}
	}
	total := 0.0
	for _, p := range all {
		total += p.Weight
	}
	if total > 0 {
		for i := range all {
			all[i].Weight /= total
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Weight > all[j].Weight })
	return all, nil
}

// Path is one ingress→egress route with its traffic weight.
type Path struct {
	Vertices []string
	Weight   float64
}

// WithVertex returns a copy of the graph with the named vertex replaced.
// It is the mutation primitive the optimizer uses to explore configurable
// parameters (D_vi, N_vi, γ_vi) without rebuilding graphs by hand.
func (g *Graph) WithVertex(v Vertex) (*Graph, error) {
	if _, ok := g.vertices[v.Name]; !ok {
		return nil, fmt.Errorf("core: WithVertex: unknown vertex %q", v.Name)
	}
	vs := g.Vertices()
	for i := range vs {
		if vs[i].Name == v.Name {
			vs[i] = v
		}
	}
	return NewGraph(g.name, vs, g.Edges())
}

// WithEdge returns a copy of the graph with the matching edge replaced.
func (g *Graph) WithEdge(e Edge) (*Graph, error) {
	if _, ok := g.edgeIdx[[2]string{e.From, e.To}]; !ok {
		return nil, fmt.Errorf("core: WithEdge: unknown edge %s->%s", e.From, e.To)
	}
	es := g.Edges()
	for i := range es {
		if es[i].From == e.From && es[i].To == e.To {
			es[i] = e
		}
	}
	return NewGraph(g.name, g.Vertices(), es)
}
