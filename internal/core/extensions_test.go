package core

import (
	"math"
	"testing"
)

func TestEstimateMixWeightedAverage(t *testing.T) {
	// Two sizes with different graphs: small packets bound by compute,
	// large by ingress.
	build := func(gran, bw float64, p float64) Model {
		g, err := NewBuilder("mix").
			AddIngress("in").
			AddIP("ip", p, 1, 0).
			AddEgress("out").
			Connect("in", "ip", 1).
			Connect("ip", "out", 1).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return Model{Graph: g, Traffic: Traffic{IngressBW: bw, Granularity: gran}}
	}
	small := build(64, 10e9, 1e9)  // compute bound at 1e9
	large := build(1500, 2e9, 4e9) // ingress bound at 2e9
	mix, err := EstimateMix([]MixComponent{
		{Weight: 0.25, Model: small},
		{Weight: 0.75, Model: large},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*1e9 + 0.75*2e9
	if !approx(mix.Throughput, want, 1e-12) {
		t.Fatalf("Throughput = %v, want %v", mix.Throughput, want)
	}
	sEst, _ := small.Estimate()
	lEst, _ := large.Estimate()
	wantLat := 0.25*sEst.Latency.Attainable + 0.75*lEst.Latency.Attainable
	if !approx(mix.Latency, wantLat, 1e-12) {
		t.Fatalf("Latency = %v, want %v", mix.Latency, wantLat)
	}
	if len(mix.Components) != 2 {
		t.Fatalf("components = %d", len(mix.Components))
	}
}

func TestEstimateMixNormalizesWeights(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 1e8, Granularity: 512}}
	a, err := EstimateMix([]MixComponent{{Weight: 1, Model: m}, {Weight: 1, Model: m}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateMix([]MixComponent{{Weight: 10, Model: m}, {Weight: 10, Model: m}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.Throughput, b.Throughput, 1e-12) || !approx(a.Latency, b.Latency, 1e-12) {
		t.Fatal("weights should be normalized")
	}
}

func TestEstimateMixErrors(t *testing.T) {
	if _, err := EstimateMix(nil); err == nil {
		t.Fatal("empty mix should fail")
	}
	g := linearGraph(t, 1e9, 1, 0)
	m := Model{Graph: g, Traffic: Traffic{IngressBW: 1, Granularity: 64}}
	if _, err := EstimateMix([]MixComponent{{Weight: -1, Model: m}}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := EstimateMix([]MixComponent{{Weight: 0, Model: m}}); err == nil {
		t.Fatal("zero total weight should fail")
	}
	bad := Model{Graph: g, Traffic: Traffic{IngressBW: 1, Granularity: 0}}
	if _, err := EstimateMix([]MixComponent{{Weight: 1, Model: bad}}); err == nil {
		t.Fatal("invalid component model should fail")
	}
}

// tenantGraph builds a one-IP graph whose IP is named after the physical
// engine so consolidation can aggregate.
func tenantGraph(t *testing.T, ipName string, p float64, gamma float64) *Graph {
	t.Helper()
	g, err := NewBuilder("tenant-"+ipName).
		AddIngress("in").
		AddVertex(Vertex{Name: ipName, Kind: KindIP, Throughput: p, Parallelism: 1, QueueCapacity: 16, Partition: gamma}).
		AddEgress("out").
		Connect("in", ipName, 1).
		Connect(ipName, "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMultiTenantSharedIPBottleneck(t *testing.T) {
	// Two tenants hammering the same physical IP (same vertex name): the
	// aggregate ceiling is P / Σ(w·Σδ) = P since both have Σδ=1 and the
	// weights sum to 1.
	mt := MultiTenant{
		Hardware: Hardware{InterfaceBW: 100e9},
		Traffic:  Traffic{IngressBW: 50e9, Granularity: 1024},
		Tenants: []Tenant{
			{Weight: 1, Graph: tenantGraph(t, "arm", 2e9, 0.5)},
			{Weight: 1, Graph: tenantGraph(t, "arm", 2e9, 0.5)},
		},
	}
	est, err := mt.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(est.Attainable, 2e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 2e9", est.Attainable)
	}
	if est.Bottleneck.Kind != ConstraintIPCompute || est.Bottleneck.Name != "arm" {
		t.Fatalf("Bottleneck = %+v", est.Bottleneck)
	}
	if len(est.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(est.Tenants))
	}
	// Each tenant gets half of the attainable rate.
	for _, te := range est.Tenants {
		if !approx(te.Throughput, 1e9, 1e-12) {
			t.Fatalf("tenant throughput = %v, want 1e9", te.Throughput)
		}
		if !approx(te.Weight, 0.5, 1e-12) {
			t.Fatalf("tenant weight = %v", te.Weight)
		}
	}
	// Weighted latency equals the mean of the per-tenant latencies here.
	want := 0.5*est.Tenants[0].Latency.Attainable + 0.5*est.Tenants[1].Latency.Attainable
	if !approx(est.Latency, want, 1e-12) {
		t.Fatalf("Latency = %v, want %v", est.Latency, want)
	}
}

func TestMultiTenantDisjointIPs(t *testing.T) {
	// Disjoint engines: the device sustains the offered load until the
	// slower tenant's weighted ceiling binds. Tenant B (weight 0.5, P=1e9)
	// caps total W at P/(w·Σδ) = 2e9.
	mt := MultiTenant{
		Traffic: Traffic{IngressBW: 50e9, Granularity: 1024},
		Tenants: []Tenant{
			{Weight: 1, Graph: tenantGraph(t, "armA", 10e9, 1)},
			{Weight: 1, Graph: tenantGraph(t, "armB", 1e9, 1)},
		},
	}
	est, err := mt.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(est.Attainable, 2e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 2e9", est.Attainable)
	}
	if est.Bottleneck.Name != "armB" {
		t.Fatalf("Bottleneck = %+v", est.Bottleneck)
	}
}

func TestMultiTenantInterfaceAggregation(t *testing.T) {
	// Each tenant graph uses Σα = 2; aggregate Σ w·α = 2 regardless of
	// tenant count, so the interface ceiling is BW/2.
	mt := MultiTenant{
		Hardware: Hardware{InterfaceBW: 8e9},
		Traffic:  Traffic{IngressBW: 50e9, Granularity: 1024},
		Tenants: []Tenant{
			{Weight: 3, Graph: tenantGraph(t, "a", 100e9, 1)},
			{Weight: 1, Graph: tenantGraph(t, "b", 100e9, 1)},
		},
	}
	est, err := mt.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(est.Attainable, 4e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 4e9", est.Attainable)
	}
	if est.Bottleneck.Kind != ConstraintInterface {
		t.Fatalf("Bottleneck = %+v", est.Bottleneck)
	}
	// Weight-proportional shares.
	if !approx(est.Tenants[0].Throughput, 3e9, 1e-9) || !approx(est.Tenants[1].Throughput, 1e9, 1e-9) {
		t.Fatalf("shares = %v, %v", est.Tenants[0].Throughput, est.Tenants[1].Throughput)
	}
}

func TestMultiTenantGranularityOverride(t *testing.T) {
	gA := tenantGraph(t, "a", 10e9, 1)
	mt := MultiTenant{
		Traffic: Traffic{IngressBW: 1e9, Granularity: 1024},
		Tenants: []Tenant{
			{Weight: 1, Graph: gA, Granularity: 4096},
		},
	}
	est, err := mt.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Compute = D·g·Σδ/(P·indeg) with g=4096.
	vt := est.Tenants[0].Latency.Vertices["a"]
	if !approx(vt.Compute, 4096/10e9, 1e-12) {
		t.Fatalf("Compute = %v, want %v", vt.Compute, 4096/10e9)
	}
}

func TestMultiTenantErrors(t *testing.T) {
	g := tenantGraph(t, "a", 1e9, 1)
	cases := []MultiTenant{
		{Traffic: Traffic{IngressBW: 1, Granularity: 64}},
		{Traffic: Traffic{IngressBW: 1, Granularity: 64}, Tenants: []Tenant{{Weight: 0, Graph: g}}},
		{Traffic: Traffic{IngressBW: 1, Granularity: 64}, Tenants: []Tenant{{Weight: 1, Graph: nil}}},
		{Traffic: Traffic{IngressBW: 1, Granularity: 0}, Tenants: []Tenant{{Weight: 1, Graph: g}}},
		{Hardware: Hardware{InterfaceBW: -1}, Traffic: Traffic{IngressBW: 1, Granularity: 64}, Tenants: []Tenant{{Weight: 1, Graph: g}}},
		{Traffic: Traffic{IngressBW: 1, Granularity: 64}, Tenants: []Tenant{{Weight: math.Inf(1), Graph: g}}},
	}
	for i, mt := range cases {
		if _, err := mt.Estimate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInsertRateLimiter(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	g2, err := InsertRateLimiter(g, "ip", 0.5e9, 8)
	if err != nil {
		t.Fatal(err)
	}
	rl, ok := g2.Vertex("ratelimit:ip")
	if !ok {
		t.Fatal("rate limiter vertex missing")
	}
	if rl.Kind != KindRateLimiter || rl.Throughput != 0.5e9 || rl.QueueCapacity != 8 {
		t.Fatalf("limiter = %+v", rl)
	}
	// Edges rewired: rx -> limiter -> ip.
	if _, ok := g2.Edge("rx", "ratelimit:ip"); !ok {
		t.Fatal("rx edge not rewired into limiter")
	}
	if _, ok := g2.Edge("ratelimit:ip", "ip"); !ok {
		t.Fatal("limiter->ip edge missing")
	}
	if _, ok := g2.Edge("rx", "ip"); ok {
		t.Fatal("old edge survived rewiring")
	}
	// The limiter becomes the throughput bottleneck.
	m := Model{Graph: g2, Traffic: Traffic{IngressBW: 10e9, Granularity: 1024}}
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rep.Attainable, 0.5e9, 1e-12) {
		t.Fatalf("Attainable = %v, want 5e8", rep.Attainable)
	}
	if rep.Bottleneck.Name != "ratelimit:ip" {
		t.Fatalf("Bottleneck = %+v", rep.Bottleneck)
	}
	// And it adds queueing delay at load.
	lr, err := Model{Graph: g2, Traffic: Traffic{IngressBW: 0.45e9, Granularity: 1024}}.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if lr.Vertices["ratelimit:ip"].Queue <= 0 {
		t.Fatal("limiter should contribute queueing delay at 90% of its rate")
	}
}

func TestInsertRateLimiterErrors(t *testing.T) {
	g := linearGraph(t, 1e9, 1, 0)
	if _, err := InsertRateLimiter(g, "ghost", 1e9, 4); err == nil {
		t.Fatal("unknown vertex should fail")
	}
	if _, err := InsertRateLimiter(g, "rx", 1e9, 4); err == nil {
		t.Fatal("rate limiting ingress should fail")
	}
	if _, err := InsertRateLimiter(g, "ip", 0, 4); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := InsertRateLimiter(g, "ip", 1e9, 0); err == nil {
		t.Fatal("zero capacity should fail")
	}
	g2, err := InsertRateLimiter(g, "ip", 1e9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertRateLimiter(g2, "ip", 1e9, 4); err == nil {
		t.Fatal("double limiting should fail")
	}
}

// §2.4's motivating example, executable: a firewall realized as a
// match-action table for known flows and as a regex engine for unknown
// ones. The two execution paths embody different bottlenecks, and
// Extension #2 mixes them by traffic demand — something a fixed-input
// model cannot express.
func TestTrafficInducedExecutionPaths(t *testing.T) {
	// Match-action path: very fast lookup, bounded by the table engine.
	matchAction, err := NewBuilder("fw-match").
		AddIngress("in").
		AddIP("mat", 20e9, 4, 64).
		AddEgress("out").
		Connect("in", "mat", 1).
		Connect("mat", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Regex path: payload-scanning engine an order of magnitude slower.
	regex, err := NewBuilder("fw-regex").
		AddIngress("in").
		AddIP("regex", 2e9, 2, 64).
		AddEgress("out").
		Connect("in", "regex", 1).
		Connect("regex", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	model := func(g *Graph, bw float64) Model {
		return Model{Graph: g, Traffic: Traffic{IngressBW: bw, Granularity: 512}}
	}
	// Mostly-known traffic: the mix estimate sits near the match-action
	// numbers; mostly-unknown traffic drags it toward the regex engine.
	mixAt := func(knownShare float64) MixEstimate {
		est, err := EstimateMix([]MixComponent{
			{Weight: knownShare, Model: model(matchAction, knownShare*10e9)},
			{Weight: 1 - knownShare, Model: model(regex, (1-knownShare)*10e9)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	known := mixAt(0.9)
	unknown := mixAt(0.1)
	if !(known.Throughput > unknown.Throughput) {
		t.Fatalf("known-heavy mix %v should out-throughput unknown-heavy %v",
			known.Throughput, unknown.Throughput)
	}
	// The per-component reports name different bottlenecks.
	kb := known.Components[0].Throughput.Bottleneck
	ub := unknown.Components[1].Throughput.Bottleneck
	if kb.Name == ub.Name && kb.Kind == ub.Kind {
		t.Fatalf("paths should embody different bottlenecks: %v vs %v", kb, ub)
	}
	// The regex slice saturates its engine under unknown-heavy demand.
	if unknown.Components[1].Throughput.Bottleneck.Name != "regex" {
		t.Fatalf("unknown-heavy regex slice bottleneck = %v",
			unknown.Components[1].Throughput.Bottleneck)
	}
}
