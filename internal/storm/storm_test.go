package storm

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lognic/internal/obs/slo"
	"lognic/internal/serve"
)

func newReplica(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return ts
}

func corpus(t *testing.T, cfg CorpusConfig) []Item {
	t.Helper()
	items, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return items
}

// Every corpus item must be accepted by the daemon — a 4xx here means the
// generator's request DTOs drifted from serve's.
func TestCorpusItemsAreValid(t *testing.T) {
	ts := newReplica(t, serve.Config{})
	for _, ep := range []string{"estimate", "simulate", "optimize"} {
		items := corpus(t, CorpusConfig{Endpoint: ep, Unique: 70, SimDuration: 0.0005})
		seen := map[string]bool{}
		for i, it := range items {
			if seen[it.SpecHash] {
				t.Fatalf("%s: corpus item %d repeats spec hash %s", ep, i, it.SpecHash)
			}
			seen[it.SpecHash] = true
		}
		rep, err := Run(context.Background(), Config{
			Targets:  []string{ts.URL},
			Workers:  4,
			Duration: 300 * time.Millisecond,
			Corpus:   items,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors4xx != 0 || rep.Errors5xx != 0 || rep.NetErrors != 0 {
			t.Fatalf("%s: corpus drew errors: %+v", ep, rep)
		}
		if rep.Completed == 0 {
			t.Fatalf("%s: no requests completed", ep)
		}
		wantEvals := rep.Completed
		if ep == "optimize" {
			wantEvals *= 8 // one request sweeps parallelism 1..8
		}
		if rep.CompletedEvals != wantEvals {
			t.Fatalf("%s: evals=%d for %d requests, want %d", ep, rep.CompletedEvals, rep.Completed, wantEvals)
		}
	}
}

// Closed-loop round trip against a healthy replica: work completes, no
// server errors, the report carries percentiles, and its JSON encoding is
// valid and includes them.
func TestClosedLoopRoundTrip(t *testing.T) {
	ts := newReplica(t, serve.Config{})
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 32})
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Workers:  8,
		Duration: 500 * time.Millisecond,
		Corpus:   items,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("server errors under normal load: %d", rep.Errors5xx)
	}
	if rep.Completed == 0 || rep.Throughput <= 0 {
		t.Fatalf("no work done: %+v", rep)
	}
	// 32 unique specs against a 1024-entry cache: after the first pass
	// everything is a hit.
	if rep.CacheHits == 0 {
		t.Fatal("expected cache hits on a small corpus")
	}
	l := rep.Latency["estimate"]
	if l == nil || l.Count != rep.Completed {
		t.Fatalf("latency summary missing or miscounted: %+v", rep.Latency)
	}
	if l.P50Ms <= 0 || l.P50Ms > l.P99Ms+1e-9 || l.P99Ms > l.P999Ms+1e-9 || l.P999Ms > l.MaxMs*1.03 {
		t.Fatalf("implausible percentiles: %+v", l)
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	lat := decoded["latency"].(map[string]any)["estimate"].(map[string]any)
	for _, k := range []string{"p50_ms", "p90_ms", "p99_ms", "p999_ms"} {
		if _, ok := lat[k]; !ok {
			t.Fatalf("JSON report missing %s: %s", k, raw)
		}
	}
	if Table([]*Report{rep}) == "" {
		t.Fatal("empty table")
	}
}

// Past saturation the shed rate must grow with offered load: a
// 1-worker/tiny-queue/no-cache replica saturates in the tens of RPS, so
// sweeping well past that must show monotonically non-decreasing shed —
// and zero 5xx throughout (overload is 429's job, never 500's).
func TestOpenLoopShedMonotone(t *testing.T) {
	ts := newReplica(t, serve.Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	items := corpus(t, CorpusConfig{Endpoint: "simulate", Unique: 16, SimDuration: 0.02})
	reports, err := Sweep(context.Background(), Config{
		Targets:  []string{ts.URL},
		Workers:  4,
		Duration: 600 * time.Millisecond,
		Corpus:   items,
	}, []float64{50, 400, 3000})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep.Errors5xx != 0 {
			t.Fatalf("step %d: overload must shed, not 500: %+v", i, rep)
		}
		if i > 0 && rep.ShedRate+0.05 < reports[i-1].ShedRate {
			t.Fatalf("shed rate fell past saturation: step %d %.3f -> step %d %.3f",
				i-1, reports[i-1].ShedRate, i, rep.ShedRate)
		}
	}
	last := reports[len(reports)-1]
	if last.Shed+last.Dropped == 0 {
		t.Fatalf("3000 rps against a 1-worker uncached replica must shed: %+v", last)
	}
}

// Hash routing must send every occurrence of a spec to the same replica.
func TestHashRoutingAffinity(t *testing.T) {
	a := newReplica(t, serve.Config{})
	b := newReplica(t, serve.Config{})
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 8})
	rep, err := Run(context.Background(), Config{
		Targets:  []string{a.URL, b.URL},
		Workers:  4,
		Duration: 400 * time.Millisecond,
		Routing:  "hash",
		Corpus:   items,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With affinity, each spec misses exactly once fleet-wide.
	if rep.CacheMisses > uint64(len(items)) {
		t.Fatalf("affinity routing saw %d misses for %d specs", rep.CacheMisses, len(items))
	}
	if rep.Errors5xx != 0 || rep.Errors4xx != 0 {
		t.Fatalf("errors under hash routing: %+v", rep)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &hist{}
	if h.quantile(0.5) != 0 || h.mean() != 0 {
		t.Fatal("empty hist must report zeros")
	}
	// 1..1000 ms uniform: p50 ≈ 500ms, p99 ≈ 990ms, within bucket
	// resolution (2%) of exact.
	for i := 1; i <= 1000; i++ {
		h.observe(float64(i) / 1000)
	}
	for _, tc := range []struct{ q, want float64 }{{0.50, 0.500}, {0.90, 0.900}, {0.99, 0.990}, {0.999, 0.999}} {
		got := h.quantile(tc.q)
		if math.Abs(got-tc.want)/tc.want > 0.03 {
			t.Fatalf("q%.3f = %.4fs, want %.4fs ±3%%", tc.q, got, tc.want)
		}
	}
	if h.max != 1.0 {
		t.Fatalf("max %.4f", h.max)
	}
	if m := h.mean(); math.Abs(m-0.5005) > 1e-9 {
		t.Fatalf("mean %.6f", m)
	}

	// Merge keeps counts and extremes.
	h2 := &hist{}
	h2.observe(2.0)
	h.merge(h2)
	if h.count != 1001 || h.max != 2.0 {
		t.Fatalf("merge lost samples: count=%d max=%.1f", h.count, h.max)
	}
}

func TestRunValidation(t *testing.T) {
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 1})
	if _, err := Run(context.Background(), Config{Corpus: items}); err == nil {
		t.Fatal("no targets must error")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("empty corpus must error")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"http://x"}, Corpus: items, Routing: "nope"}); err == nil {
		t.Fatal("bad routing must error")
	}

	// Multi-tenant validation: names must be unique and non-empty, weights
	// positive.
	base := Config{Targets: []string{"http://x"}, Corpus: items}
	for _, bad := range [][]TenantLoad{
		{{Name: "", Weight: 1}},
		{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}},
		{{Name: "a", Weight: 0}},
		{{Name: "a", Weight: -1}},
	} {
		cfg := base
		cfg.Tenants = bad
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("tenant set %+v must error", bad)
		}
	}
}

func TestApportionWorkers(t *testing.T) {
	cases := []struct {
		total   int
		tenants []TenantLoad
		want    []int
	}{
		{11, []TenantLoad{{"heavy", 10}, {"light", 1}}, []int{10, 1}},
		{4, []TenantLoad{{"a", 3}, {"b", 1}}, []int{3, 1}},
		// Minimum one each, even when weight rounds to zero — the sum may
		// exceed total.
		{3, []TenantLoad{{"a", 100}, {"b", 1}, {"c", 1}}, []int{2, 1, 1}},
		// Largest remainder: 10 at 1:1:1 → 4,3,3.
		{10, []TenantLoad{{"a", 1}, {"b", 1}, {"c", 1}}, []int{4, 3, 3}},
	}
	for _, tc := range cases {
		got := apportionWorkers(tc.total, tc.tenants)
		if len(got) != len(tc.want) {
			t.Fatalf("apportionWorkers(%d, %v) = %v", tc.total, tc.tenants, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("apportionWorkers(%d, %v) = %v, want %v", tc.total, tc.tenants, got, tc.want)
			}
		}
	}
}

// A multi-tenant run must send each tenant's name on its requests, split
// the workers by weight, and report one independently-graded row per
// tenant.
func TestMultiTenantRun(t *testing.T) {
	var mu sync.Mutex
	headerCounts := map[string]int{}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headerCounts[r.Header.Get("X-Lognic-Tenant")]++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}\n"))
	}))
	t.Cleanup(stub.Close)

	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 4})
	rep, err := Run(context.Background(), Config{
		Targets:  []string{stub.URL},
		Workers:  4,
		Duration: 300 * time.Millisecond,
		Corpus:   items,
		Tenants:  []TenantLoad{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		SLO:      slo.Config{AvailabilityTarget: 0.999, LatencyTarget: 0.99, LatencyThreshold: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if headerCounts["a"] == 0 || headerCounts["b"] == 0 {
		t.Fatalf("both tenants must send their header: %v", headerCounts)
	}
	if headerCounts[""] != 0 {
		t.Fatalf("%d requests went out untenanted", headerCounts[""])
	}
	a, b := rep.Tenants["a"], rep.Tenants["b"]
	if a == nil || b == nil {
		t.Fatalf("missing tenant rows: %+v", rep.Tenants)
	}
	if a.Workers != 3 || b.Workers != 1 {
		t.Fatalf("worker split a=%d b=%d, want 3/1", a.Workers, b.Workers)
	}
	if a.Completed == 0 || b.Completed == 0 {
		t.Fatalf("both tenants must complete work: a=%d b=%d", a.Completed, b.Completed)
	}
	if a.Completed+b.Completed != rep.Completed {
		t.Fatalf("tenant rows (%d+%d) must sum to the aggregate (%d)",
			a.Completed, b.Completed, rep.Completed)
	}
	if a.SLO == nil || b.SLO == nil || len(a.SLO.Windows) == 0 {
		t.Fatal("tenant rows must carry their own SLO grade")
	}
	if a.Latency["estimate"] == nil || a.Latency["estimate"].Count != a.Completed {
		t.Fatalf("tenant latency summary missing or miscounted: %+v", a.Latency)
	}
}

// A 429 without Retry-After breaks the backpressure contract; the report
// must count it, per tenant and in aggregate.
func TestShedMissingRetryAfterCounted(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests) // deliberately no Retry-After
	}))
	t.Cleanup(stub.Close)
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 2})
	rep, err := Run(context.Background(), Config{
		Targets:  []string{stub.URL},
		Workers:  2,
		Duration: 250 * time.Millisecond,
		Corpus:   items,
		Tenants:  []TenantLoad{{Name: "only", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 || rep.ShedMissingRetryAfter != rep.Shed {
		t.Fatalf("every hint-less 429 must be counted: shed=%d missing=%d",
			rep.Shed, rep.ShedMissingRetryAfter)
	}
	only := rep.Tenants["only"]
	if only == nil || only.ShedMissingRetryAfter != only.Shed || only.Shed == 0 {
		t.Fatalf("tenant row must mirror the hint-less count: %+v", only)
	}
}
