package storm

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lognic/internal/obs"
	"lognic/internal/obs/slo"
	"lognic/internal/serve"
)

// End to end through real HTTP: storm samples every request into its own
// tracer, the replica joins the traces server-side, and the merged
// export contains client and server spans sharing trace ids, with the
// replica's events remapped to their own process row.
func TestMergedTraceSharesTraceIDs(t *testing.T) {
	ts := newReplica(t, serve.Config{TraceSpans: 8192})
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 8})
	tracer := obs.NewTracer(0)
	rep, err := Run(context.Background(), Config{
		Targets:     []string{ts.URL},
		Workers:     2,
		Duration:    200 * time.Millisecond,
		Corpus:      items,
		TraceSample: 1,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Traced counts sampled attempts; a couple may still be in flight when
	// the step deadline lands, so it can exceed Completed but never trail it.
	if rep.Traced == 0 || rep.Traced < rep.Completed {
		t.Fatalf("Traced=%d Completed=%d, want every request traced at sample 1", rep.Traced, rep.Completed)
	}

	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, tracer, []string{ts.URL}, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	// Index trace ids by process; metadata events carry no args.trace_id.
	traceIDs := func(pid int) map[string]bool {
		ids := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if int(ev["pid"].(float64)) != pid {
				continue
			}
			if args, ok := ev["args"].(map[string]any); ok {
				if id, ok := args["trace_id"].(string); ok {
					ids[id] = true
				}
			}
		}
		return ids
	}
	client, server := traceIDs(1), traceIDs(2)
	if len(client) == 0 || len(server) == 0 {
		t.Fatalf("client %d / server %d trace ids, want both populated", len(client), len(server))
	}
	shared := 0
	for id := range client {
		if server[id] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no trace id appears on both sides of the merge")
	}

	// Both process rows are named, the replica's with its target URL.
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			names = append(names, args["name"].(string))
		}
	}
	if len(names) != 2 || names[0] != "lognic-storm" || !strings.Contains(names[1], ts.URL) {
		t.Fatalf("process names %v, want storm + replica tagged with its URL", names)
	}
}

// A replica without tracing enabled fails the export loudly instead of
// producing a silently partial merge.
func TestMergedTraceFailsOnUntracedReplica(t *testing.T) {
	ts := newReplica(t, serve.Config{}) // no tracer: /v1/trace 404s
	tracer := obs.NewTracer(0)
	tracer.Emit(obs.Span{Name: "estimate", Cat: "client", Track: 1})
	err := WriteMergedTrace(&bytes.Buffer{}, tracer, []string{ts.URL}, nil)
	if err == nil || !strings.Contains(err.Error(), "status 404") {
		t.Fatalf("err = %v, want a 404 export failure", err)
	}
}

// A graded run carries an SLO verdict computed from the run window.
func TestRunSLOVerdict(t *testing.T) {
	ts := newReplica(t, serve.Config{})
	items := corpus(t, CorpusConfig{Endpoint: "estimate", Unique: 8})
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Workers:  2,
		Duration: 200 * time.Millisecond,
		Corpus:   items,
		SLO: slo.Config{
			AvailabilityTarget: 0.999,
			LatencyTarget:      0.99,
			LatencyThreshold:   time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLO == nil || len(rep.SLO.Windows) != 1 {
		t.Fatalf("SLO = %+v, want one graded run window", rep.SLO)
	}
	w := rep.SLO.Windows[0]
	if w.Window != "run" || w.Total != rep.Completed || w.Errors != 0 {
		t.Fatalf("run window %+v vs report %+v", w, rep)
	}
	if w.Availability != 1 || rep.SLO.Verdict != "ok" {
		t.Fatalf("healthy run graded %q (availability %v)", rep.SLO.Verdict, w.Availability)
	}
}
