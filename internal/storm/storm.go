// Package storm is a fleet load generator for lognic-serve: N workers
// drive a generated spec corpus against one or many replicas in a closed
// loop (back-to-back, measures capacity) or an open loop (paced arrivals
// at an offered rate, measures behavior under overload), honoring the
// daemon's 429+Retry-After backpressure and reporting throughput, error
// and shed rates, and HDR-style latency percentiles per endpoint.
package storm

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"lognic/internal/obs"
	"lognic/internal/obs/slo"
)

// Config is one load step.
type Config struct {
	// Targets are replica base URLs (e.g. http://127.0.0.1:8080). At least
	// one is required.
	Targets []string
	// Workers is the number of concurrent request loops (default 8).
	Workers int
	// Duration is the step's wall time (default 10s).
	Duration time.Duration
	// Rate is the offered arrival rate in requests/s. 0 runs a closed
	// loop: every worker issues back-to-back requests, measuring the
	// fleet's capacity rather than its behavior at a fixed load.
	Rate float64
	// Routing picks the replica per request: "rr" (round-robin, default)
	// or "hash" (affinity on the canonical spec hash, so each spec's
	// cache entry lives on exactly one replica).
	Routing string
	// Corpus is the request mix (BuildCorpus).
	Corpus []Item
	// Client overrides the HTTP client (tests); nil builds one with
	// per-host connection reuse sized to Workers.
	Client *http.Client
	// Registry, when non-nil, receives storm_* counters after the step.
	Registry *obs.Registry
	// TraceSample is the fraction of requests that originate a W3C trace
	// context (0 disables, 1 traces everything). A sampled request sends
	// a traceparent header and records a client span in Tracer, so the
	// daemon's /v1/trace export and the client spans merge into one tree.
	TraceSample float64
	// Tracer receives the client spans of sampled requests. Nil with
	// TraceSample > 0 builds one at the default capacity.
	Tracer *obs.Tracer
	// SLO grades the whole run as a single window with slo.Evaluate —
	// the same arithmetic lognic-serve applies to its 5m/1h windows.
	// Zero targets disable grading.
	SLO slo.Config
	// Tenants, when non-empty, runs a multi-tenant step: each tenant's
	// requests carry its name in X-Lognic-Tenant and it receives a
	// weight-proportional share of the workers (closed loop) or of the
	// offered rate (open loop, with a weight-proportional worker split
	// absorbing it). The report grows per-tenant rows, each graded
	// against the same SLO config.
	Tenants []TenantLoad
}

// TenantLoad is one synthetic tenant of a multi-tenant run.
type TenantLoad struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Routing == "" {
		c.Routing = "rr"
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        c.Workers * 2,
				MaxIdleConnsPerHost: c.Workers * 2,
			},
			Timeout: 30 * time.Second,
		}
	}
	if c.TraceSample > 0 && c.Tracer == nil {
		c.Tracer = obs.NewTracer(0)
	}
	if c.SLO.LatencyThreshold <= 0 {
		c.SLO.LatencyThreshold = time.Second
	}
	return c
}

// LatencySummary is one endpoint's latency distribution, milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Report is one load step's outcome.
type Report struct {
	// OfferedRPS is the configured arrival rate; 0 means closed loop.
	OfferedRPS float64 `json:"offered_rps"`
	// DurationSec is the measured wall time of the step.
	DurationSec float64 `json:"duration_sec"`
	// Completed counts 200 responses; Throughput is Completed/Duration.
	// CompletedEvals weights each response by its item's Evals (an
	// optimize request covers a whole knob sweep), so EvalThroughput is
	// comparable across endpoints.
	Completed      uint64  `json:"completed"`
	Throughput     float64 `json:"throughput_rps"`
	CompletedEvals uint64  `json:"completed_evals"`
	EvalThroughput float64 `json:"eval_throughput_per_sec"`
	// Shed counts 429 responses; Dropped counts open-loop arrivals the
	// workers could not absorb (the generator's own admission queue was
	// full — offered load the fleet never saw). ShedRate is
	// (Shed+Dropped)/attempted arrivals.
	Shed     uint64  `json:"shed"`
	Dropped  uint64  `json:"dropped"`
	ShedRate float64 `json:"shed_rate"`
	// Errors4xx excludes 429s (those are Shed).
	Errors4xx uint64 `json:"errors_4xx"`
	Errors5xx uint64 `json:"errors_5xx"`
	NetErrors uint64 `json:"net_errors"`
	// CacheHits/CacheMisses count the daemon's X-Cache header on 200s.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Slow counts completed requests over the SLO latency threshold.
	Slow uint64 `json:"slow,omitempty"`
	// Traced counts requests that originated a trace context.
	Traced uint64 `json:"traced,omitempty"`
	// ShedMissingRetryAfter counts 429s that arrived without a
	// Retry-After header — the daemon's backpressure contract says zero.
	ShedMissingRetryAfter uint64 `json:"shed_missing_retry_after,omitempty"`
	// Latency holds per-endpoint percentiles over completed requests.
	Latency map[string]*LatencySummary `json:"latency"`
	// SLO is the run graded as one window against the configured
	// objectives (nil when grading is disabled).
	SLO *slo.Status `json:"slo,omitempty"`
	// Tenants holds one row per configured tenant in a multi-tenant run
	// (nil otherwise).
	Tenants map[string]*TenantReport `json:"tenants,omitempty"`
}

// TenantReport is one tenant's slice of a multi-tenant step.
type TenantReport struct {
	Weight  float64 `json:"weight"`
	Workers int     `json:"workers"`
	// OfferedRPS is the tenant's share of the offered rate (0 in a
	// closed loop, where Workers is the offered concurrency).
	OfferedRPS            float64                    `json:"offered_rps,omitempty"`
	Completed             uint64                     `json:"completed"`
	Throughput            float64                    `json:"throughput_rps"`
	Shed                  uint64                     `json:"shed"`
	Dropped               uint64                     `json:"dropped"`
	ShedRate              float64                    `json:"shed_rate"`
	Errors4xx             uint64                     `json:"errors_4xx"`
	Errors5xx             uint64                     `json:"errors_5xx"`
	NetErrors             uint64                     `json:"net_errors"`
	CacheHits             uint64                     `json:"cache_hits"`
	CacheMisses           uint64                     `json:"cache_misses"`
	Slow                  uint64                     `json:"slow,omitempty"`
	ShedMissingRetryAfter uint64                     `json:"shed_missing_retry_after"`
	Latency               map[string]*LatencySummary `json:"latency"`
	SLO                   *slo.Status                `json:"slo,omitempty"`
}

// workerStats is one worker's private tally — no sharing until the merge.
type workerStats struct {
	completed, evals, shed, e4xx, e5xx, netErr uint64
	hits, misses, slow, traced, shedNoRetry    uint64
	hists                                      map[string]*hist
}

func newWorkerStats() *workerStats {
	return &workerStats{hists: make(map[string]*hist)}
}

// Run executes one load step and reports it.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("storm: at least one target required")
	}
	if len(cfg.Corpus) == 0 {
		return nil, fmt.Errorf("storm: empty corpus")
	}
	if cfg.Routing != "rr" && cfg.Routing != "hash" {
		return nil, fmt.Errorf("storm: unknown routing %q (want rr or hash)", cfg.Routing)
	}

	// Multi-tenant setup: split the workers across tenants in proportion
	// to weight (largest remainder, minimum one worker each), so the
	// closed-loop concurrency — and the open-loop absorption capacity —
	// matches the offered skew.
	multi := len(cfg.Tenants) > 0
	var tenantWorkers []int
	assign := make([]int, 0, cfg.Workers) // worker index → tenant index
	if multi {
		seen := make(map[string]bool, len(cfg.Tenants))
		for _, t := range cfg.Tenants {
			if t.Name == "" {
				return nil, fmt.Errorf("storm: tenant with empty name")
			}
			if seen[t.Name] {
				return nil, fmt.Errorf("storm: duplicate tenant %q", t.Name)
			}
			seen[t.Name] = true
			if t.Weight <= 0 {
				return nil, fmt.Errorf("storm: tenant %q needs a positive weight", t.Name)
			}
		}
		if cfg.Workers < len(cfg.Tenants) {
			cfg.Workers = len(cfg.Tenants)
		}
		tenantWorkers = apportionWorkers(cfg.Workers, cfg.Tenants)
		for ti, n := range tenantWorkers {
			for i := 0; i < n; i++ {
				assign = append(assign, ti)
			}
		}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var rr atomic.Uint64
	pick := func(it *Item) string {
		if cfg.Routing == "hash" {
			h := fnv.New32a()
			io.WriteString(h, it.SpecHash)
			return cfg.Targets[h.Sum32()%uint32(len(cfg.Targets))]
		}
		return cfg.Targets[(rr.Add(1)-1)%uint64(len(cfg.Targets))]
	}

	// Open loop: a pacer emits arrival tokens at cfg.Rate; workers absorb
	// them. A token nobody can take (all workers busy, buffer full) is a
	// dropped arrival — offered load the fleet would have shed anyway.
	// Multi-tenant open loops run one pacer per tenant at its weighted
	// rate share, feeding that tenant's workers only, so a saturated heavy
	// tenant drops its own arrivals without stealing light-tenant tokens.
	openLoop := cfg.Rate > 0
	nTenants := len(cfg.Tenants)
	if nTenants == 0 {
		nTenants = 1
	}
	workChans := make([]chan struct{}, nTenants)
	droppedPer := make([]atomic.Uint64, nTenants)
	if openLoop {
		if multi {
			var wsum float64
			for _, t := range cfg.Tenants {
				wsum += t.Weight
			}
			for ti, t := range cfg.Tenants {
				workChans[ti] = make(chan struct{}, tenantWorkers[ti]*2)
				go pace(ctx, cfg.Rate*t.Weight/wsum, workChans[ti], &droppedPer[ti])
			}
		} else {
			workChans[0] = make(chan struct{}, cfg.Workers*2)
			go pace(ctx, cfg.Rate, workChans[0], &droppedPer[0])
		}
	}

	stats := make([]*workerStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		stats[w] = newWorkerStats()
		wg.Add(1)
		go func(w int, st *workerStats) {
			defer wg.Done()
			g := &gun{
				client: cfg.Client, st: st, closedLoop: !openLoop,
				epoch: start, track: uint64(w + 1),
				tracer: cfg.Tracer, sample: cfg.TraceSample,
				slowAfter: cfg.SLO.LatencyThreshold,
			}
			ti := 0
			if multi {
				ti = assign[w]
				g.tenant = cfg.Tenants[ti].Name
			}
			work := workChans[ti]
			// Stride through the corpus so the workers jointly cover it
			// evenly and deterministically.
			idx := w
			for {
				if openLoop {
					select {
					case <-ctx.Done():
						return
					case _, ok := <-work:
						if !ok {
							return
						}
					}
				} else if ctx.Err() != nil {
					return
				}
				it := &cfg.Corpus[idx%len(cfg.Corpus)]
				idx += cfg.Workers
				g.shoot(ctx, pick(it), it)
			}
		}(w, stats[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Arrivals still buffered at shutdown were offered but never served.
	if openLoop {
		for ti, work := range workChans {
			if work == nil {
				continue
			}
			for range work {
				droppedPer[ti].Add(1)
			}
		}
	}

	droppedTenant := make([]uint64, nTenants)
	var dropped uint64
	for ti := range droppedPer {
		droppedTenant[ti] = droppedPer[ti].Load()
		dropped += droppedTenant[ti]
	}

	rep := buildReport(cfg, stats, elapsed, dropped)
	if multi {
		addTenantReports(cfg, rep, stats, assign, tenantWorkers, droppedTenant, elapsed)
	}
	if cfg.Registry != nil {
		publish(cfg.Registry, rep)
	}
	return rep, nil
}

// apportionWorkers splits the worker pool across tenants by weight:
// floor of the exact share, minimum one, remainder to the largest
// deficits (ties to the earlier tenant — the order is caller-chosen).
func apportionWorkers(total int, tenants []TenantLoad) []int {
	var wsum float64
	for _, t := range tenants {
		wsum += t.Weight
	}
	out := make([]int, len(tenants))
	gaps := make([]float64, len(tenants))
	used := 0
	for i, t := range tenants {
		exact := float64(total) * t.Weight / wsum
		share := int(exact)
		if share < 1 {
			share = 1
		}
		out[i] = share
		used += share
		gaps[i] = exact - float64(share)
	}
	for used < total {
		best := 0
		for i := 1; i < len(gaps); i++ {
			if gaps[i] > gaps[best] {
				best = i
			}
		}
		out[best]++
		gaps[best]--
		used++
	}
	return out
}

// pace emits arrival tokens into work at rate/s until ctx expires, then
// closes the channel. Tokens accrue fractionally so rates below the tick
// frequency still average out exactly.
func pace(ctx context.Context, rate float64, work chan<- struct{}, dropped *atomic.Uint64) {
	defer close(work)
	tick := time.Duration(float64(time.Second) / rate)
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var tokens float64
	last := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			tokens += rate * now.Sub(last).Seconds()
			last = now
			for ; tokens >= 1; tokens-- {
				select {
				case work <- struct{}{}:
				default:
					dropped.Add(1)
				}
			}
		}
	}
}

// gun is one worker's firing state: its private stats plus the trace
// sampler. Sampling is deterministic — a token bucket accrues sample
// per request and fires on whole tokens — so a given rate traces the
// same request positions every run.
type gun struct {
	client     *http.Client
	st         *workerStats
	closedLoop bool
	epoch      time.Time
	track      uint64
	tracer     *obs.Tracer
	sample     float64
	tokens     float64
	slowAfter  time.Duration
	// tenant, when set, rides every request as X-Lognic-Tenant.
	tenant string
}

// shoot issues one request and tallies it. In a closed loop a 429's
// Retry-After is honored (bounded, so a long hint can't stall the run);
// open-loop arrivals are externally timed, so a shed request just counts.
func (g *gun) shoot(ctx context.Context, target string, it *Item) {
	st := g.st
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/"+it.Endpoint, bytes.NewReader(it.Body))
	if err != nil {
		st.netErr++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if g.tenant != "" {
		req.Header.Set("X-Lognic-Tenant", g.tenant)
	}
	var tc obs.TraceContext
	traced := false
	if g.tracer != nil && g.sample > 0 {
		if g.tokens += g.sample; g.tokens >= 1 {
			g.tokens--
			traced = true
			tc = obs.NewTraceContext()
			req.Header.Set("traceparent", tc.Traceparent())
			st.traced++
		}
	}
	t0 := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.netErr++
		}
		return
	}
	lat := time.Since(t0).Seconds()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if traced {
		// The client span is the trace root; the daemon's request span
		// points back at it via parent_span_id, and X-Request-Id is that
		// server span's id — recorded here so one args lookup links the
		// two exports.
		g.tracer.Emit(obs.Span{
			Name: it.Endpoint, Cat: "client", Track: g.track,
			Start: t0.Sub(g.epoch).Seconds(), Dur: lat,
			Args: map[string]any{
				"code":       resp.StatusCode,
				"target":     target,
				"request_id": resp.Header.Get("X-Request-Id"),
			},
			TraceID: tc.TraceID, SpanID: tc.SpanID,
		})
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		st.completed++
		if it.Evals > 0 {
			st.evals += uint64(it.Evals)
		} else {
			st.evals++
		}
		if g.slowAfter > 0 && lat > g.slowAfter.Seconds() {
			st.slow++
		}
		h := st.hists[it.Endpoint]
		if h == nil {
			h = &hist{}
			st.hists[it.Endpoint] = h
		}
		h.observe(lat)
		switch resp.Header.Get("X-Cache") {
		case "hit":
			st.hits++
		case "miss":
			st.misses++
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		st.shed++
		if resp.Header.Get("Retry-After") == "" {
			st.shedNoRetry++ // contract violation: every shed carries a hint
		}
		if g.closedLoop {
			backoff := retryAfterOf(resp)
			if backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond // bounded: trust the hint's sign, not its scale
			}
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
		}
	case resp.StatusCode >= 500:
		st.e5xx++
	default:
		st.e4xx++
	}
}

// retryAfterOf parses a 429's Retry-After seconds (default 1).
func retryAfterOf(resp *http.Response) time.Duration {
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return time.Second
}

func buildReport(cfg Config, stats []*workerStats, elapsed time.Duration, dropped uint64) *Report {
	rep := &Report{
		OfferedRPS:  cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Dropped:     dropped,
		Latency:     make(map[string]*LatencySummary),
	}
	merged := make(map[string]*hist)
	for _, st := range stats {
		rep.Completed += st.completed
		rep.CompletedEvals += st.evals
		rep.Shed += st.shed
		rep.Errors4xx += st.e4xx
		rep.Errors5xx += st.e5xx
		rep.NetErrors += st.netErr
		rep.CacheHits += st.hits
		rep.CacheMisses += st.misses
		rep.Slow += st.slow
		rep.Traced += st.traced
		rep.ShedMissingRetryAfter += st.shedNoRetry
		for ep, h := range st.hists {
			m := merged[ep]
			if m == nil {
				m = &hist{}
				merged[ep] = m
			}
			m.merge(h)
		}
	}
	if rep.DurationSec > 0 {
		rep.Throughput = float64(rep.Completed) / rep.DurationSec
		rep.EvalThroughput = float64(rep.CompletedEvals) / rep.DurationSec
	}
	attempted := rep.Completed + rep.Shed + rep.Errors4xx + rep.Errors5xx + rep.NetErrors + rep.Dropped
	if attempted > 0 {
		rep.ShedRate = float64(rep.Shed+rep.Dropped) / float64(attempted)
	}
	for ep, h := range merged {
		rep.Latency[ep] = &LatencySummary{
			Count:  h.count,
			MeanMs: h.mean() * 1e3,
			P50Ms:  h.quantile(0.50) * 1e3,
			P90Ms:  h.quantile(0.90) * 1e3,
			P99Ms:  h.quantile(0.99) * 1e3,
			P999Ms: h.quantile(0.999) * 1e3,
			MaxMs:  h.max * 1e3,
		}
	}
	if cfg.SLO.AvailabilityTarget > 0 || cfg.SLO.LatencyTarget > 0 {
		// Grade the run as one SLO window. The denominator is admitted
		// requests (shed 429s and dropped arrivals never burn budget);
		// errors are 5xx plus transport failures — both client-visible
		// unavailability.
		total := rep.Completed + rep.Errors4xx + rep.Errors5xx + rep.NetErrors
		errs := rep.Errors5xx + rep.NetErrors
		win := slo.Evaluate("run", elapsed, total, errs, rep.Slow, cfg.SLO)
		rep.SLO = &slo.Status{
			AvailabilityTarget:      cfg.SLO.AvailabilityTarget,
			LatencyTarget:           cfg.SLO.LatencyTarget,
			LatencyThresholdSeconds: cfg.SLO.LatencyThreshold.Seconds(),
			Windows:                 []slo.WindowStatus{win},
			Verdict:                 slo.Verdict([]slo.WindowStatus{win}, cfg.SLO),
		}
	}
	return rep
}

// addTenantReports merges each tenant's workers into a per-tenant row.
// Workers are tenant-exclusive, so the per-tenant merge is the same
// arithmetic as the aggregate one over a stats subset — including an
// independent slo.Evaluate grade per tenant, which is what a fairness
// check wants: the light tenant's verdict must hold even while the
// heavy tenant's burns.
func addTenantReports(cfg Config, rep *Report, stats []*workerStats, assign, tenantWorkers []int, droppedTenant []uint64, elapsed time.Duration) {
	var wsum float64
	for _, t := range cfg.Tenants {
		wsum += t.Weight
	}
	rep.Tenants = make(map[string]*TenantReport, len(cfg.Tenants))
	for ti, t := range cfg.Tenants {
		tr := &TenantReport{
			Weight:  t.Weight,
			Workers: tenantWorkers[ti],
			Dropped: droppedTenant[ti],
			Latency: make(map[string]*LatencySummary),
		}
		if cfg.Rate > 0 {
			tr.OfferedRPS = cfg.Rate * t.Weight / wsum
		}
		merged := make(map[string]*hist)
		for w, st := range stats {
			if assign[w] != ti {
				continue
			}
			tr.Completed += st.completed
			tr.Shed += st.shed
			tr.Errors4xx += st.e4xx
			tr.Errors5xx += st.e5xx
			tr.NetErrors += st.netErr
			tr.CacheHits += st.hits
			tr.CacheMisses += st.misses
			tr.Slow += st.slow
			tr.ShedMissingRetryAfter += st.shedNoRetry
			for ep, h := range st.hists {
				m := merged[ep]
				if m == nil {
					m = &hist{}
					merged[ep] = m
				}
				m.merge(h)
			}
		}
		if sec := elapsed.Seconds(); sec > 0 {
			tr.Throughput = float64(tr.Completed) / sec
		}
		attempted := tr.Completed + tr.Shed + tr.Errors4xx + tr.Errors5xx + tr.NetErrors + tr.Dropped
		if attempted > 0 {
			tr.ShedRate = float64(tr.Shed+tr.Dropped) / float64(attempted)
		}
		for ep, h := range merged {
			tr.Latency[ep] = &LatencySummary{
				Count:  h.count,
				MeanMs: h.mean() * 1e3,
				P50Ms:  h.quantile(0.50) * 1e3,
				P90Ms:  h.quantile(0.90) * 1e3,
				P99Ms:  h.quantile(0.99) * 1e3,
				P999Ms: h.quantile(0.999) * 1e3,
				MaxMs:  h.max * 1e3,
			}
		}
		if cfg.SLO.AvailabilityTarget > 0 || cfg.SLO.LatencyTarget > 0 {
			total := tr.Completed + tr.Errors4xx + tr.Errors5xx + tr.NetErrors
			errs := tr.Errors5xx + tr.NetErrors
			win := slo.Evaluate("run", elapsed, total, errs, tr.Slow, cfg.SLO)
			tr.SLO = &slo.Status{
				AvailabilityTarget:      cfg.SLO.AvailabilityTarget,
				LatencyTarget:           cfg.SLO.LatencyTarget,
				LatencyThresholdSeconds: cfg.SLO.LatencyThreshold.Seconds(),
				Windows:                 []slo.WindowStatus{win},
				Verdict:                 slo.Verdict([]slo.WindowStatus{win}, cfg.SLO),
			}
		}
		rep.Tenants[t.Name] = tr
	}
}

// publish folds a report into an obs registry, post-step so the request
// hot path never touches shared metric state.
func publish(reg *obs.Registry, rep *Report) {
	reg.Counter("storm_requests_completed_total", "Requests answered 200.", nil).Add(float64(rep.Completed))
	reg.Counter("storm_requests_shed_total", "Requests answered 429 plus dropped arrivals.", nil).Add(float64(rep.Shed + rep.Dropped))
	reg.Counter("storm_requests_error_total", "Requests answered 4xx/5xx or failed at the transport.", nil).
		Add(float64(rep.Errors4xx + rep.Errors5xx + rep.NetErrors))
	reg.Gauge("storm_throughput_rps", "Completed requests per second, last step.", nil).Set(rep.Throughput)
	reg.Gauge("storm_eval_throughput", "Completed model evaluations per second, last step.", nil).Set(rep.EvalThroughput)
	reg.Gauge("storm_shed_rate", "Shed fraction of attempted arrivals, last step.", nil).Set(rep.ShedRate)
	for ep, l := range rep.Latency {
		labels := obs.Labels{"endpoint": ep}
		reg.Gauge("storm_latency_p50_ms", "p50 latency, last step.", labels).Set(l.P50Ms)
		reg.Gauge("storm_latency_p99_ms", "p99 latency, last step.", labels).Set(l.P99Ms)
	}
	for name, tr := range rep.Tenants {
		labels := obs.Labels{"tenant": name}
		reg.Counter("storm_tenant_completed_total", "Requests answered 200, by tenant.", labels).Add(float64(tr.Completed))
		reg.Counter("storm_tenant_shed_total", "Requests answered 429 plus dropped arrivals, by tenant.", labels).Add(float64(tr.Shed + tr.Dropped))
		reg.Gauge("storm_tenant_shed_rate", "Shed fraction of attempted arrivals, last step, by tenant.", labels).Set(tr.ShedRate)
	}
}

// Sweep runs one step per offered rate, reusing cfg for everything else.
// A rate of 0 is a closed-loop capacity probe.
func Sweep(ctx context.Context, cfg Config, rates []float64) ([]*Report, error) {
	reports := make([]*Report, 0, len(rates))
	for _, r := range rates {
		if ctx.Err() != nil {
			return reports, ctx.Err()
		}
		step := cfg
		step.Rate = r
		rep, err := Run(ctx, step)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// Table renders reports as an aligned human-readable table.
func Table(reports []*Report) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "offered_rps\tthroughput\tevals/s\tcompleted\tshed%\terr\thit%\tp50ms\tp90ms\tp99ms\tp999ms\tendpoint")
	for _, r := range reports {
		offered := "closed"
		if r.OfferedRPS > 0 {
			offered = strconv.FormatFloat(r.OfferedRPS, 'f', 0, 64)
		}
		hitPct := 0.0
		if n := r.CacheHits + r.CacheMisses; n > 0 {
			hitPct = 100 * float64(r.CacheHits) / float64(n)
		}
		// One row per endpoint; endpoints sorted for stable output.
		eps := make([]string, 0, len(r.Latency))
		for ep := range r.Latency {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		if len(eps) == 0 {
			eps = []string{"-"}
		}
		for _, ep := range eps {
			l := r.Latency[ep]
			if l == nil {
				l = &LatencySummary{}
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\t%.1f\t%d\t%.0f\t%.3f\t%.3f\t%.3f\t%.3f\t%s\n",
				offered, r.Throughput, r.EvalThroughput, r.Completed, 100*r.ShedRate,
				r.Errors4xx+r.Errors5xx+r.NetErrors, hitPct,
				l.P50Ms, l.P90Ms, l.P99Ms, l.P999Ms, ep)
		}
	}
	tw.Flush()
	return b.String()
}
