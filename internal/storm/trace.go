package storm

// Merged fleet trace export. A traced run leaves spans in two places:
// the client spans in storm's own tracer, and the server-side request,
// job-attempt and simulation-vertex spans in each replica's ring
// (GET /v1/trace). WriteMergedTrace stitches them into a single Chrome
// trace_event document — storm as process 1, each replica as its own
// process — with every span's W3C trace identity preserved in args, so
// Perfetto (or jq over args.trace_id) reads one request's client →
// server → job → simulation tree across processes.
//
// The processes run on different clocks (storm's run epoch vs each
// daemon's uptime), so the merged file aligns spans per process, not
// globally; the cross-process linkage is the trace/span ids, not the
// timestamps.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lognic/internal/obs"
)

// chromeDoc is a pass-through view of a Chrome trace_event JSON object:
// events stay generic maps so replica exports survive the round trip
// unmodified except for the process id.
type chromeDoc struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]any   `json:"otherData,omitempty"`
}

// WriteMergedTrace writes one trace_event document combining the client
// tracer's spans (process 1) with each target's /v1/trace export
// (process 2+). A replica that cannot be fetched fails the export — a
// partial merge would silently hide the very spans the caller asked for.
func WriteMergedTrace(w io.Writer, tracer *obs.Tracer, targets []string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf, "lognic-storm"); err != nil {
		return err
	}
	var merged chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &merged); err != nil {
		return err
	}
	for i, target := range targets {
		doc, err := fetchTrace(client, target)
		if err != nil {
			return fmt.Errorf("storm: trace export from %s: %w", target, err)
		}
		pid := i + 2
		for _, ev := range doc.TraceEvents {
			ev["pid"] = pid
			// Keep each replica's process row distinguishable.
			if ev["name"] == "process_name" {
				if args, ok := ev["args"].(map[string]any); ok {
					args["name"] = fmt.Sprintf("%v %s", args["name"], target)
				}
			}
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
	}
	return json.NewEncoder(w).Encode(merged)
}

func fetchTrace(client *http.Client, target string) (chromeDoc, error) {
	resp, err := client.Get(target + "/v1/trace")
	if err != nil {
		return chromeDoc{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return chromeDoc{}, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return chromeDoc{}, err
	}
	return doc, nil
}
