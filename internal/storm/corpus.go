package storm

// The spec corpus: generated permutations of device, scenario shape and
// offered load, so a run's cache hit-ratio is a controlled variable —
// corpus size n against a replica cache of c entries converges to a
// steady-state hit ratio of 1 when n ≤ c and degrades predictably past
// it. Every item is guaranteed distinct (a unique per-index nudge on the
// offered load), and carries the canonical spec hash that hash-affinity
// routing keys on — the same hash lognic-serve caches and coalesces by.

import (
	"encoding/json"
	"fmt"

	"lognic/internal/spec"
)

// Item is one request of the corpus: the endpoint it targets, the exact
// POST body, and the canonical spec hash for affinity routing. Evals is
// the number of model evaluations one request covers — 1 for estimate and
// simulate, the knob-sweep width for optimize — so throughput can be
// reported in evaluations/s, the unit that compares across endpoints.
type Item struct {
	Endpoint string `json:"endpoint"`
	Body     []byte `json:"-"`
	SpecHash string `json:"spec_hash"`
	Evals    int    `json:"evals"`
}

// CorpusConfig tunes corpus generation.
type CorpusConfig struct {
	// Endpoint is "estimate", "simulate" or "optimize".
	Endpoint string
	// Unique is the number of distinct items (≥1). Smaller corpora hit
	// the replica caches more; a corpus larger than the fleet's cache
	// capacity forces steady-state misses.
	Unique int
	// SimDuration is the simulated seconds per /v1/simulate item
	// (default 0.002 — long enough to cost real work, short enough to
	// sweep).
	SimDuration float64
	// Seed feeds the per-item simulation seeds so distinct corpora don't
	// collide in a shared cache tier.
	Seed int64
}

// device is one hardware/scenario template the permutations start from.
type device struct {
	name        string
	interfaceBW spec.Bandwidth
	memoryBW    spec.Bandwidth
	coreBW      spec.Bandwidth // per-stage processing throughput
	accelBW     spec.Bandwidth // accelerator stage throughput
}

// devices are loosely modeled on the paper's on-path SoC catalogs: a
// LiquidIO-2-class part and a BlueField-2-class part.
var devices = []device{
	{name: "lio2", interfaceBW: 50e9 / 8, memoryBW: 160e9, coreBW: 10e9 / 8, accelBW: 40e9 / 8},
	{name: "bf2", interfaceBW: 100e9 / 8, memoryBW: 200e9, coreBW: 16e9 / 8, accelBW: 60e9 / 8},
}

// granularities are the permuted packet sizes in bytes.
var granularities = []float64{512, 1024, 4096, 16384}

// loadFractions are the permuted offered loads as a fraction of the
// core-stage capacity — from comfortable to near saturation.
var loadFractions = []float64{0.2, 0.4, 0.6, 0.8}

// estimateReq / simulateReq / optimizeReq mirror the lognic-serve request
// DTOs field for field, so marshaled bodies are exactly what the daemon
// decodes.
type estimateReq struct {
	Spec spec.File `json:"spec"`
}

type simulateReq struct {
	Spec     spec.File `json:"spec"`
	Duration float64   `json:"duration"`
	Seed     int64     `json:"seed"`
}

type knobReq struct {
	Vertex string `json:"vertex"`
	Param  string `json:"param"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
}

type optimizeReq struct {
	Spec  spec.File `json:"spec"`
	Goal  string    `json:"goal"`
	Knobs []knobReq `json:"knobs"`
}

// specFor builds the i-th permutation: device × parallelism × packet size
// × load fraction, plus a per-index load nudge that keeps every item
// unique however large the corpus grows.
func specFor(i int) spec.File {
	d := devices[i%len(devices)]
	j := i / len(devices)
	par := 1 + j%8
	j /= 8
	gran := granularities[j%len(granularities)]
	j /= len(granularities)
	frac := loadFractions[j%len(loadFractions)]

	coreCapacity := float64(d.coreBW) * float64(par)
	// +i keeps items distinct once the named permutations are exhausted.
	ingress := frac*coreCapacity + float64(i)
	if max := float64(d.interfaceBW) * 0.9; ingress > max {
		ingress = max
	}
	return spec.File{
		Name: fmt.Sprintf("storm-%s-%d", d.name, i),
		Hardware: spec.Hardware{
			InterfaceBW: d.interfaceBW,
			MemoryBW:    d.memoryBW,
		},
		Graph: spec.GraphSpec{
			Vertices: []spec.VertexSpec{
				{Name: "rx", Kind: "ingress"},
				{Name: "cores", Kind: "ip", Throughput: d.coreBW, Parallelism: par, QueueCapacity: 64, Overhead: 3e-7, QueueModel: "mm1n"},
				{Name: "accel", Kind: "ip", Throughput: d.accelBW, Parallelism: 2, QueueCapacity: 128, QueueModel: "mmck"},
				{Name: "tx", Kind: "egress"},
			},
			Edges: []spec.EdgeSpec{
				{From: "rx", To: "cores", Delta: 1, Alpha: 1},
				{From: "cores", To: "accel", Delta: 1, Alpha: 1, Beta: 1},
				{From: "accel", To: "tx", Delta: 1},
			},
		},
		Traffic: spec.TrafficSpec{
			IngressBW:   spec.Bandwidth(ingress),
			Granularity: spec.Size(gran),
		},
	}
}

// BuildCorpus generates cfg.Unique distinct request items.
func BuildCorpus(cfg CorpusConfig) ([]Item, error) {
	if cfg.Unique < 1 {
		return nil, fmt.Errorf("storm: corpus needs at least one item")
	}
	simDur := cfg.SimDuration
	if simDur <= 0 {
		simDur = 0.002
	}
	items := make([]Item, 0, cfg.Unique)
	for i := 0; i < cfg.Unique; i++ {
		f := specFor(i)
		hash, err := f.Hash()
		if err != nil {
			return nil, fmt.Errorf("storm: hashing corpus spec %d: %w", i, err)
		}
		var body []byte
		evals := 1
		switch cfg.Endpoint {
		case "estimate":
			body, err = json.Marshal(estimateReq{Spec: f})
		case "simulate":
			body, err = json.Marshal(simulateReq{Spec: f, Duration: simDur, Seed: cfg.Seed + int64(i)})
		case "optimize":
			body, err = json.Marshal(optimizeReq{Spec: f, Goal: "latency", Knobs: []knobReq{
				{Vertex: "cores", Param: "parallelism", Lo: 1, Hi: 8},
			}})
			evals = 8 // the optimizer evaluates every parallelism in [1,8]
		default:
			return nil, fmt.Errorf("storm: unknown endpoint %q (want estimate, simulate or optimize)", cfg.Endpoint)
		}
		if err != nil {
			return nil, fmt.Errorf("storm: marshaling corpus item %d: %w", i, err)
		}
		items = append(items, Item{Endpoint: cfg.Endpoint, Body: body, SpecHash: hash, Evals: evals})
	}
	return items, nil
}
