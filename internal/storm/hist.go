package storm

// An HDR-style latency histogram: geometric buckets at 2% resolution from
// 1µs to ~100s, so p999 of a millisecond-scale distribution resolves to a
// couple percent without storing raw samples. Each worker owns one (no
// locks on the hot path); the runner merges them after the run.

import "math"

const (
	histMin     = 1e-6 // seconds; floor of the tracked range
	histGrowth  = 1.02
	histBuckets = 932 // 1µs·1.02^932 ≈ 108s
)

var invLogGrowth = 1 / math.Log(histGrowth)

// hist records a latency distribution.
type hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	max    float64
}

// bucketFor maps a latency in seconds to its bucket index.
func bucketFor(sec float64) int {
	if sec <= histMin {
		return 0
	}
	i := int(math.Log(sec/histMin) * invLogGrowth)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// observe records one sample.
func (h *hist) observe(sec float64) {
	h.counts[bucketFor(sec)]++
	h.count++
	h.sum += sec
	if sec > h.max {
		h.max = sec
	}
}

// merge folds another histogram into this one.
func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-th quantile (0 < q ≤ 1) as seconds: the
// geometric midpoint of the bucket holding the ceil(q·count)-th sample.
// Returns 0 with no samples.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			mid := histMin * math.Pow(histGrowth, float64(i)+0.5)
			if mid > h.max && h.max > 0 {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// mean returns the arithmetic mean in seconds (0 with no samples).
func (h *hist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}
