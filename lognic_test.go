package lognic

import (
	"math"
	"testing"
)

func buildEcho(t *testing.T) Model {
	t.Helper()
	g, err := NewBuilder("echo").
		AddIngress("rx").
		AddIP("cores", 2e9, 8, 64).
		AddEgress("tx").
		Connect("rx", "cores", 1).
		Connect("cores", "tx", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		Hardware: Hardware{InterfaceBW: Gbps(50).BytesPerSecond()},
		Graph:    g,
		Traffic:  Traffic{IngressBW: Gbps(10).BytesPerSecond(), Granularity: 1500},
	}
}

func TestQuickstartFlow(t *testing.T) {
	m := buildEcho(t)
	est, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Throughput.Attainable <= 0 || est.Latency.Attainable <= 0 {
		t.Fatalf("estimate = %+v", est)
	}
	// 10 Gbps offered < 2 GB/s compute: ingress bound.
	if est.Throughput.Bottleneck.Kind != ConstraintIngress {
		t.Fatalf("bottleneck = %+v", est.Throughput.Bottleneck)
	}
}

func TestSimulateMatchesModel(t *testing.T) {
	m := buildEcho(t)
	res, err := Simulate(SimConfig{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile:  FixedProfile("mtu", Gbps(10), 1500),
		Seed:     3,
		Duration: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-Gbps(10).BytesPerSecond()) > 0.05*Gbps(10).BytesPerSecond() {
		t.Fatalf("sim throughput = %v", res.Throughput)
	}
}

func TestSolveFacade(t *testing.T) {
	// Find the ingress rate that drives latency to its minimum (trivially
	// the lower bound) — exercises the optimizer plumbing end to end.
	sol, err := Solve(Problem{
		Build: func(x []float64) (Model, error) {
			m := buildEcho(t)
			m.Traffic.IngressBW = x[0]
			return m, nil
		},
		Goal:   MinimizeLatency,
		Bounds: Bounds{Lo: []float64{1e8}, Hi: []float64{1.9e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] > 3e8 {
		t.Fatalf("expected the low-load corner, got %v", sol.X[0])
	}
}

func TestMixAndTenantsFacade(t *testing.T) {
	m := buildEcho(t)
	mix, err := EstimateMix([]MixComponent{{Weight: 1, Model: m}, {Weight: 1, Model: m}})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Throughput <= 0 {
		t.Fatal("mix throughput must be positive")
	}
	mt := MultiTenant{
		Hardware: m.Hardware,
		Traffic:  m.Traffic,
		Tenants:  []Tenant{{Weight: 1, Graph: m.Graph}},
	}
	if _, err := mt.Estimate(); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimiterFacade(t *testing.T) {
	m := buildEcho(t)
	g2, err := InsertRateLimiter(m.Graph, "cores", 1e9, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Graph = g2
	rep, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attainable != 1e9 {
		t.Fatalf("limiter not binding: %v", rep.Attainable)
	}
}

func TestSpecFacade(t *testing.T) {
	data := []byte(`{
	  "name": "mini",
	  "hardware": {"interface_bw": "50Gbps"},
	  "graph": {
	    "vertices": [
	      {"name": "in", "kind": "ingress"},
	      {"name": "ip", "throughput": "16Gbps", "parallelism": 4, "queue_capacity": 16},
	      {"name": "out", "kind": "egress"}
	    ],
	    "edges": [
	      {"from": "in", "to": "ip", "delta": 1, "alpha": 1},
	      {"from": "ip", "to": "out", "delta": 1, "alpha": 1}
	    ]
	  },
	  "traffic": {"ingress_bw": "8Gbps", "granularity": 1500}
	}`)
	m, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Throughput.Attainable != Gbps(8).BytesPerSecond() {
		t.Fatalf("attainable = %v", est.Throughput.Attainable)
	}
	if _, err := LoadSpec("/nope.json"); err == nil {
		t.Fatal("missing spec should fail")
	}
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Fatal("bad json should fail")
	}
}

func TestEqualSplitProfileFacade(t *testing.T) {
	p, err := EqualSplitProfile("tp1", Gbps(10), 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sizes.NumPoints() != 2 {
		t.Fatalf("points = %d", p.Sizes.NumPoints())
	}
	if Version == "" {
		t.Fatal("version must be set")
	}
}

func TestSatisfyFacade(t *testing.T) {
	m := buildEcho(t)
	res, err := Satisfy(FeasibilityProblem{
		Build: func(x []float64) (Model, error) {
			mm := m
			mm.Traffic.IngressBW = x[0]
			return mm, nil
		},
		Bounds: Bounds{Lo: []float64{1e8}, Hi: []float64{1.9e9}},
		Requirements: []Requirement{
			ThroughputFloor(1e9),
			LatencyBound(1e-3),
			DropCeiling(0.05),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("expected feasible, residuals %+v", res.Residuals)
	}
}

func TestSensitivitiesFacade(t *testing.T) {
	m := buildEcho(t)
	out, err := m.Sensitivities(SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no sensitivities")
	}
	seen := false
	for _, s := range out {
		if s.Param == ParamIngressBW {
			seen = true
		}
	}
	if !seen {
		t.Fatal("ingress sensitivity missing")
	}
}

func TestUnrollRecirculationFacade(t *testing.T) {
	m := buildEcho(t)
	g2, err := UnrollRecirculation(m.Graph, "cores", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g2.Vertex("cores#1"); !ok {
		t.Fatal("replica missing")
	}
}

func TestMixFromProfile(t *testing.T) {
	prof, err := EqualSplitProfile("tp", Gbps(10), 64, 1500)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := MixFromProfile(prof, func(size, bw float64) (Model, error) {
		m := buildEcho(t)
		m.Traffic.Granularity = size
		m.Traffic.IngressBW = bw
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	// Byte shares: equal split means each size carries half the rate.
	var total float64
	for _, c := range comps {
		total += c.Model.Traffic.IngressBW
	}
	if math.Abs(total-Gbps(10).BytesPerSecond()) > 1 {
		t.Fatalf("byte shares sum to %v", total)
	}
	mix, err := EstimateMix(comps)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Throughput <= 0 || mix.Latency <= 0 {
		t.Fatalf("mix = %+v", mix)
	}
	if _, err := MixFromProfile(prof, nil); err == nil {
		t.Fatal("nil build should fail")
	}
	if _, err := MixFromProfile(Profile{}, func(a, b float64) (Model, error) { return Model{}, nil }); err == nil {
		t.Fatal("invalid profile should fail")
	}
}
