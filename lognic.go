// Package lognic is a Go implementation of LogNIC, the high-level
// performance model for SmartNICs from "LogNIC: A High-Level Performance
// Model for SmartNICs" (MICRO '23). LogNIC is packet-centric: a
// SmartNIC-offloaded program is a directed acyclic execution graph whose
// vertices are hardware entities (IP blocks, ingress/egress engines) and
// whose edges are data movements over the SoC interface or the memory
// subsystem. Given that graph, a handful of device parameters, and a
// traffic profile, the model estimates attainable throughput (with the
// bottleneck attributed) and average latency, and an optimizer searches
// the configurable parameters for settings that meet performance goals.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core — the model itself: execution graphs, throughput
//     (Equations 1–4), latency (Equations 5–8 and 12), and the §3.7
//     extensions (multi-tenancy, traffic mixes, rate limiters);
//   - internal/optimizer — the §3.8 optimizer;
//   - internal/sim — a packet-level discrete-event simulator standing in
//     for physical SmartNICs, used to validate the model;
//   - internal/devices, internal/apps, internal/nvme — catalogs of the
//     paper's four platforms and builders for its five case studies;
//   - internal/experiments — regeneration of every evaluation figure.
//
// # Quick start
//
//	g, err := lognic.NewBuilder("echo").
//		AddIngress("rx").
//		AddIP("cores", 2e9, 8, 64). // 2 GB/s across 8 engines, queue 64
//		AddEgress("tx").
//		Connect("rx", "cores", 1).
//		Connect("cores", "tx", 1).
//		Build()
//	m := lognic.Model{
//		Hardware: lognic.Hardware{InterfaceBW: lognic.Gbps(50).BytesPerSecond()},
//		Graph:    g,
//		Traffic:  lognic.Traffic{IngressBW: lognic.Gbps(10).BytesPerSecond(), Granularity: 1500},
//	}
//	est, err := m.Estimate()
//	fmt.Println(est.Throughput.Bottleneck, est.Latency.Attainable)
package lognic

import (
	"context"
	"errors"

	"lognic/internal/core"
	"lognic/internal/numopt"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/spec"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core model types (see internal/core for full documentation).
type (
	// Vertex is an execution-graph node: an IP block or ingress/egress
	// engine, carrying Table 2's software parameters (P, D, N, O, A, γ).
	Vertex = core.Vertex
	// Edge is a data movement with its δ/α/β fractions and optional
	// characterized bandwidth.
	Edge = core.Edge
	// Graph is a validated execution DAG.
	Graph = core.Graph
	// Builder assembles a Graph incrementally.
	Builder = core.Builder
	// Hardware carries BW_INTF and BW_MEM.
	Hardware = core.Hardware
	// Traffic carries BW_in and the ingress granularity g_in.
	Traffic = core.Traffic
	// Model binds hardware, graph and traffic.
	Model = core.Model
	// Estimate bundles a throughput and latency report.
	Estimate = core.Estimate
	// ThroughputReport is Equation 4's outcome with the constraint list.
	ThroughputReport = core.ThroughputReport
	// LatencyReport is Equation 8's outcome with per-path breakdowns.
	LatencyReport = core.LatencyReport
	// Constraint is one min() term of Equation 4.
	Constraint = core.Constraint
	// VertexKind classifies vertices.
	VertexKind = core.VertexKind
	// QueueModel selects M/M/1/N (paper) or M/M/c/K (extension).
	QueueModel = core.QueueModel
	// MixComponent and MixEstimate implement Extension #2 (traffic mixes).
	MixComponent = core.MixComponent
	// MixEstimate is the dist_size-weighted aggregate of a traffic mix.
	MixEstimate = core.MixEstimate
	// Tenant and MultiTenant implement Extension #1 (consolidation).
	Tenant = core.Tenant
	// MultiTenant consolidates several execution graphs on one device.
	MultiTenant = core.MultiTenant
)

// Vertex kinds.
const (
	KindIP          = core.KindIP
	KindIngress     = core.KindIngress
	KindEgress      = core.KindEgress
	KindRateLimiter = core.KindRateLimiter
)

// Queue models.
const (
	QueueMM1N = core.QueueMM1N
	QueueMMcK = core.QueueMMcK
)

// Constraint kinds (bottleneck attribution).
const (
	ConstraintIngress   = core.ConstraintIngress
	ConstraintIPCompute = core.ConstraintIPCompute
	ConstraintEdge      = core.ConstraintEdge
	ConstraintInterface = core.ConstraintInterface
	ConstraintMemory    = core.ConstraintMemory
)

// NewBuilder starts building an execution graph.
func NewBuilder(name string) *Builder { return core.NewBuilder(name) }

// NewGraph validates vertices and edges into a Graph.
func NewGraph(name string, vertices []Vertex, edges []Edge) (*Graph, error) {
	return core.NewGraph(name, vertices, edges)
}

// EstimateMix evaluates Extension #2: a set of per-packet-size models
// combined by their dist_size weights.
func EstimateMix(components []MixComponent) (MixEstimate, error) {
	return core.EstimateMix(components)
}

// InsertRateLimiter applies Extension #3: places an
// enqueue/dequeue-only block with the given drain rate (bytes/second) and
// queue capacity in front of a non-work-conserving IP.
func InsertRateLimiter(g *Graph, before string, rate float64, queueCap int) (*Graph, error) {
	return core.InsertRateLimiter(g, before, rate, queueCap)
}

// Optimizer surface (see internal/optimizer).
type (
	// Goal selects the optimization metric and direction.
	Goal = optimizer.Goal
	// Problem is a continuous optimization over model parameters.
	Problem = optimizer.Problem
	// Solution is the best configuration found.
	Solution = optimizer.Solution
	// Bounds box-constrains a Problem's parameters.
	Bounds = numopt.Bounds
)

// Optimization goals.
const (
	MinimizeLatency    = optimizer.MinimizeLatency
	MaximizeThroughput = optimizer.MaximizeThroughput
	MaximizeGoodput    = optimizer.MaximizeGoodput
)

// Solve runs the LogNIC optimizer on a continuous problem.
func Solve(p Problem) (Solution, error) { return optimizer.Solve(p) }

// Feasibility surface (the Figure 4-b workflow: requirements in, a
// satisfying configuration or relaxation hints out).
type (
	// Requirement is a hard performance demand (g(model) ≤ 0).
	Requirement = optimizer.Requirement
	// Preference is a weighted secondary objective over satisfying points.
	Preference = optimizer.Preference
	// FeasibilityProblem is a requirements-driven search.
	FeasibilityProblem = optimizer.FeasibilityProblem
	// FeasibilityResult reports the outcome with per-requirement residuals.
	FeasibilityResult = optimizer.FeasibilityResult
	// Residual is one requirement's shortfall at the returned point.
	Residual = optimizer.Residual
)

// Satisfy searches for parameters meeting every requirement; when none
// exist it reports which requirements to relax.
func Satisfy(p FeasibilityProblem) (FeasibilityResult, error) { return optimizer.Satisfy(p) }

// LatencyBound requires the modeled average latency ≤ bound seconds.
func LatencyBound(bound float64) Requirement { return optimizer.LatencyBound(bound) }

// ThroughputFloor requires the modeled throughput ≥ floor bytes/second.
func ThroughputFloor(floor float64) Requirement { return optimizer.ThroughputFloor(floor) }

// DropCeiling requires the modeled drop probability ≤ ceiling.
func DropCeiling(ceiling float64) Requirement { return optimizer.DropCeiling(ceiling) }

// Analysis surface.
type (
	// Sensitivity is one parameter's estimated elasticity.
	Sensitivity = core.Sensitivity
	// SensitivityOptions tunes the finite-difference analysis.
	SensitivityOptions = core.SensitivityOptions
	// ParamKind identifies the perturbed parameter.
	ParamKind = core.ParamKind
)

// Sensitivity parameter kinds.
const (
	ParamIngressBW         = core.ParamIngressBW
	ParamGranularity       = core.ParamGranularity
	ParamInterfaceBW       = core.ParamInterfaceBW
	ParamMemoryBW          = core.ParamMemoryBW
	ParamVertexThroughput  = core.ParamVertexThroughput
	ParamVertexParallelism = core.ParamVertexParallelism
	ParamVertexQueue       = core.ParamVertexQueue
)

// UnrollRecirculation expresses Figure 1's recirculate path in DAG form:
// a packet looping `times` extra times through the vertex instead flows
// through that many γ-partitioned replicas in series.
func UnrollRecirculation(g *Graph, name string, times int) (*Graph, error) {
	return core.UnrollRecirculation(g, name, times)
}

// Simulator surface (see internal/sim): the packet-level discrete-event
// simulator used to validate the analytical estimates.
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is the measured outcome.
	SimResult = sim.Result
	// ServiceTimer overrides a vertex's service-time process.
	ServiceTimer = sim.ServiceTimer
	// Fault is one timed hardware degradation injected into a run.
	Fault = sim.Fault
	// FaultSchedule is a set of timed injections.
	FaultSchedule = sim.FaultSchedule
	// FaultKind classifies an injection.
	FaultKind = sim.FaultKind
	// FaultStats counts fault activity over a run.
	FaultStats = sim.FaultStats
	// RetryPolicy re-presents dropped arrivals with exponential backoff.
	RetryPolicy = sim.RetryPolicy
	// Degradation is a steady-state fault scenario for the model side.
	Degradation = core.Degradation
)

// Fault kinds.
const (
	EngineDown  = sim.EngineDown
	EngineUp    = sim.EngineUp
	LinkDegrade = sim.LinkDegrade
	VertexStall = sim.VertexStall
)

// Degradation link names.
const (
	LinkInterface = core.LinkInterface
	LinkMemory    = core.LinkMemory
)

// Typed abort errors of the hardened run harness.
var (
	// ErrBudgetExceeded aborts a run past SimConfig.MaxEvents.
	ErrBudgetExceeded = sim.ErrBudgetExceeded
	// ErrStalled aborts a run whose simulation clock stops advancing.
	ErrStalled = sim.ErrStalled
)

// Simulate executes a discrete-event simulation of an execution graph
// under a traffic profile.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// SimulateContext is Simulate honoring cancellation and deadlines.
func SimulateContext(ctx context.Context, cfg SimConfig) (SimResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return SimResult{}, err
	}
	return s.RunContext(ctx)
}

// Degrade folds a steady-state fault scenario into a model's parameters,
// so estimation mode predicts degraded-mode behavior (see core.Degrade).
func Degrade(m Model, d Degradation) (Model, error) { return core.Degrade(m, d) }

// PermanentFaults converts a Degradation into the equivalent simulator
// fault schedule: time-zero, never-recovered injections.
func PermanentFaults(d Degradation) FaultSchedule { return sim.PermanentFaults(d) }

// Traffic profiles (see internal/traffic).
type (
	// Profile is a named traffic profile: rate, size distribution and
	// arrival process.
	Profile = traffic.Profile
)

// FixedProfile builds a single-size profile.
func FixedProfile(name string, rate unit.Bandwidth, size unit.Size) Profile {
	return traffic.Fixed(name, rate, size)
}

// EqualSplitProfile splits bandwidth equally across packet sizes (the
// PANIC mixed profiles of §4.6).
func EqualSplitProfile(name string, rate unit.Bandwidth, sizes ...unit.Size) (Profile, error) {
	return traffic.EqualSplit(name, rate, sizes...)
}

// MixFromProfile expands a mixed-size profile into Extension-2 components:
// build is called once per packet size with that size and its byte share
// of the profile's rate, and the returned models are weighted by the
// per-packet probabilities (dist_size), ready for EstimateMix.
func MixFromProfile(p Profile, build func(sizeBytes, ingressBW float64) (Model, error)) ([]MixComponent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if build == nil {
		return nil, errors.New("lognic: nil build")
	}
	byteShares := p.Sizes.ByteWeights()
	points := p.Sizes.Points()
	out := make([]MixComponent, 0, len(points))
	for i, pt := range points {
		m, err := build(pt.Size.Bytes(), byteShares[i].Weight*p.Rate.BytesPerSecond())
		if err != nil {
			return nil, err
		}
		out = append(out, MixComponent{Weight: pt.Weight, Model: m})
	}
	return out, nil
}

// Quantity helpers (see internal/unit).
type (
	// Bandwidth is bytes/second with Gbps-style formatting.
	Bandwidth = unit.Bandwidth
	// Size is a byte count.
	Size = unit.Size
	// Duration is a latency in seconds.
	Duration = unit.Duration
)

// Gbps converts a decimal gigabit-per-second figure into a Bandwidth.
func Gbps(v float64) Bandwidth { return unit.Gbps(v) }

// LoadSpec reads a JSON model description (see internal/spec for the
// format) and returns the validated model.
func LoadSpec(path string) (Model, error) {
	f, err := spec.Load(path)
	if err != nil {
		return Model{}, err
	}
	return f.Model()
}

// ParseSpec decodes a JSON model description from memory.
func ParseSpec(data []byte) (Model, error) {
	f, err := spec.Parse(data)
	if err != nil {
		return Model{}, err
	}
	return f.Model()
}
