// Command lognic-storm load-tests a lognic-serve fleet: it generates a
// spec corpus (device × scenario × load permutations; -unique controls
// the cache hit ratio), drives it at one or many replicas with N workers
// in a closed loop (-rps 0, capacity probe) or an open loop at offered
// rates (-rps 500, or a sweep -rps 100:2000:5), honors the daemon's
// 429 + Retry-After backpressure, and reports throughput, error and shed
// rates, and p50/p90/p99/p999 latency per endpoint as a human table plus
// a JSON report.
//
// Usage:
//
//	lognic-storm -targets http://h1:8080,http://h2:8080
//	             [-workers n] [-duration d] [-rps 0|x|lo:hi:steps]
//	             [-endpoint estimate|simulate|optimize] [-unique n]
//	             [-sim-duration s] [-routing rr|hash] [-seed n]
//	             [-json file] [-metrics file] [-pprof addr]
//
// Routing "hash" keys on the canonical spec hash — the same hash the
// daemon caches by — so every occurrence of a spec lands on one replica
// and the fleet's caches partition instead of duplicating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lognic/internal/cli"
	"lognic/internal/obs"
	"lognic/internal/storm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lognic-storm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targets := fs.String("targets", "http://127.0.0.1:8080", "comma-separated replica base URLs")
	workers := fs.Int("workers", 8, "concurrent request workers")
	duration := fs.Duration("duration", 10*time.Second, "wall time per load step")
	rps := fs.String("rps", "0", "offered rate: 0 (closed loop), a rate, or lo:hi:steps for a sweep")
	endpoint := fs.String("endpoint", "estimate", "endpoint to drive: estimate, simulate or optimize")
	unique := fs.Int("unique", 64, "distinct specs in the corpus (smaller = higher cache hit ratio)")
	simDuration := fs.Float64("sim-duration", 0.002, "simulated seconds per /v1/simulate request")
	routing := fs.String("routing", "rr", "replica selection: rr (round-robin) or hash (spec-hash affinity)")
	seed := fs.Int64("seed", 1, "corpus seed (feeds per-item simulation seeds)")
	jsonOut := fs.String("json", "", "write the JSON report here ('-' for stdout) in addition to the table")
	metricsOut := fs.String("metrics", "", "write final metrics (Prometheus text format) to this file")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof and live /metrics on this address while running")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rates, err := parseRates(*rps)
	if err != nil {
		fmt.Fprintf(stderr, "lognic-storm: %v\n", err)
		return 2
	}
	corpus, err := storm.BuildCorpus(storm.CorpusConfig{
		Endpoint:    *endpoint,
		Unique:      *unique,
		SimDuration: *simDuration,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "lognic-storm: %v\n", err)
		return 2
	}

	reg := obs.NewRegistry()
	if *pprofAddr != "" {
		ln, err := cli.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "lognic-storm: %v\n", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "lognic-storm: debug server on http://%s\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := storm.Config{
		Targets:  splitTargets(*targets),
		Workers:  *workers,
		Duration: *duration,
		Routing:  *routing,
		Corpus:   corpus,
		Registry: reg,
	}
	fmt.Fprintf(stderr, "lognic-storm: %d targets, %d workers, %d-spec %s corpus, %d step(s) of %s\n",
		len(cfg.Targets), cfg.Workers, len(corpus), *endpoint, len(rates), duration)

	reports, err := storm.Sweep(ctx, cfg, rates)
	if err != nil && len(reports) == 0 {
		fmt.Fprintf(stderr, "lognic-storm: %v\n", err)
		return 1
	}
	if err != nil {
		fmt.Fprintf(stderr, "lognic-storm: sweep interrupted after %d step(s): %v\n", len(reports), err)
	}

	fmt.Fprint(stdout, storm.Table(reports))
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, reports); err != nil {
			fmt.Fprintf(stderr, "lognic-storm: %v\n", err)
			return 1
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "lognic-storm: writing metrics: %v\n", err)
			return 1
		}
	}

	// A run that completed nothing is a failed run, whatever the table says.
	var completed uint64
	for _, r := range reports {
		completed += r.Completed
	}
	if completed == 0 {
		fmt.Fprintln(stderr, "lognic-storm: no requests completed")
		return 1
	}
	return 0
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	return out
}

// parseRates parses -rps: "0" (closed loop), a single rate, or
// "lo:hi:steps" for a linear sweep, endpoints included.
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 1:
		r, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad -rps %q", s)
		}
		return []float64{r}, nil
	case 3:
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || lo <= 0 || hi < lo || steps < 2 {
			return nil, fmt.Errorf("bad -rps sweep %q (want lo:hi:steps, lo>0, hi≥lo, steps≥2)", s)
		}
		rates := make([]float64, steps)
		for i := range rates {
			rates[i] = lo + (hi-lo)*float64(i)/float64(steps-1)
		}
		return rates, nil
	default:
		return nil, fmt.Errorf("bad -rps %q (want 0, a rate, or lo:hi:steps)", s)
	}
}

// writeJSON writes the report list as one JSON document.
func writeJSON(path string, stdout *os.File, reports []*storm.Report) error {
	var enc *json.Encoder
	if path == "-" {
		enc = json.NewEncoder(stdout)
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
