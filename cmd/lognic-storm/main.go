// Command lognic-storm load-tests a lognic-serve fleet: it generates a
// spec corpus (device × scenario × load permutations; -unique controls
// the cache hit ratio), drives it at one or many replicas with N workers
// in a closed loop (-rps 0, capacity probe) or an open loop at offered
// rates (-rps 500, or a sweep -rps 100:2000:5), honors the daemon's
// 429 + Retry-After backpressure, and reports throughput, error and shed
// rates, and p50/p90/p99/p999 latency per endpoint as a human table plus
// a JSON report.
//
// Usage:
//
//	lognic-storm -targets http://h1:8080,http://h2:8080
//	             [-workers n] [-duration d] [-rps 0|x|lo:hi:steps]
//	             [-endpoint estimate|simulate|optimize] [-unique n]
//	             [-sim-duration s] [-routing rr|hash] [-seed n]
//	             [-json file] [-metrics file] [-pprof addr]
//	             [-trace-sample f] [-trace-out trace.json]
//	             [-slo-availability f] [-slo-latency f]
//	             [-slo-latency-threshold d] [-log-level l] [-log-format f]
//	             [-tenants n] [-tenant-weights w0,w1,...]
//
// With -tenants N, the run is multi-tenant: N synthetic tenants named
// t0..tN-1 split the workers (closed loop) or the offered rate (open
// loop) in proportion to -tenant-weights (default: equal weights), every
// request carries its tenant in X-Lognic-Tenant, and the report and
// verdict lines grow one row per tenant — each graded against the same
// SLO objectives, so a fairness check reads straight off the output.
//
// With -trace-sample, sampled requests carry W3C traceparent headers the
// daemon joins; -trace-out merges the client spans with every replica's
// /v1/trace export into one Perfetto file. Each step is also graded
// against availability/latency SLOs and the verdict printed per step.
//
// Routing "hash" keys on the canonical spec hash — the same hash the
// daemon caches by — so every occurrence of a spec lands on one replica
// and the fleet's caches partition instead of duplicating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lognic/internal/cli"
	"lognic/internal/obs"
	"lognic/internal/obs/olog"
	"lognic/internal/obs/slo"
	"lognic/internal/storm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lognic-storm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targets := fs.String("targets", "http://127.0.0.1:8080", "comma-separated replica base URLs")
	workers := fs.Int("workers", 8, "concurrent request workers")
	duration := fs.Duration("duration", 10*time.Second, "wall time per load step")
	rps := fs.String("rps", "0", "offered rate: 0 (closed loop), a rate, or lo:hi:steps for a sweep")
	endpoint := fs.String("endpoint", "estimate", "endpoint to drive: estimate, simulate or optimize")
	unique := fs.Int("unique", 64, "distinct specs in the corpus (smaller = higher cache hit ratio)")
	simDuration := fs.Float64("sim-duration", 0.002, "simulated seconds per /v1/simulate request")
	routing := fs.String("routing", "rr", "replica selection: rr (round-robin) or hash (spec-hash affinity)")
	seed := fs.Int64("seed", 1, "corpus seed (feeds per-item simulation seeds)")
	jsonOut := fs.String("json", "", "write the JSON report here ('-' for stdout) in addition to the table")
	metricsOut := fs.String("metrics", "", "write final metrics (Prometheus text format) to this file")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof and live /metrics on this address while running")
	traceSample := fs.Float64("trace-sample", 0, "fraction of requests that originate a W3C trace (1 traces everything)")
	traceOut := fs.String("trace-out", "", "write the merged client+fleet Perfetto trace here (requires -trace-sample > 0)")
	sloAvail := fs.Float64("slo-availability", 0.999, "availability objective for the run verdict (negative disables)")
	sloLatency := fs.Float64("slo-latency", 0.99, "latency objective for the run verdict (negative disables)")
	sloThreshold := fs.Duration("slo-latency-threshold", time.Second, "latency objective cutoff")
	tenantsN := fs.Int("tenants", 0, "number of synthetic tenants t0..tN-1 (0 runs untenanted)")
	tenantWeights := fs.String("tenant-weights", "", "comma-separated tenant weights, e.g. 10,1 (default: equal; requires -tenants)")
	logOpts := olog.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	lg = lg.With(olog.KeyComponent, "storm")

	rates, err := parseRates(*rps)
	if err != nil {
		olog.Fail(lg, "bad flags", "error", err.Error())
		return 2
	}
	tenants, err := parseTenants(*tenantsN, *tenantWeights)
	if err != nil {
		olog.Fail(lg, "bad flags", "error", err.Error())
		return 2
	}
	corpus, err := storm.BuildCorpus(storm.CorpusConfig{
		Endpoint:    *endpoint,
		Unique:      *unique,
		SimDuration: *simDuration,
		Seed:        *seed,
	})
	if err != nil {
		olog.Fail(lg, "corpus build failed", "error", err.Error())
		return 2
	}

	reg := obs.NewRegistry()
	if *pprofAddr != "" {
		ln, err := cli.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			return olog.Fail(lg, "debug server failed", "error", err.Error())
		}
		defer ln.Close()
		lg.Info("debug server up", "addr", "http://"+ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tracer *obs.Tracer
	if *traceSample > 0 {
		// Built here, not in storm.Run, so every sweep step shares one
		// ring and the merged export covers the whole run.
		tracer = obs.NewTracer(0)
	} else if *traceOut != "" {
		olog.Fail(lg, "-trace-out needs -trace-sample > 0")
		return 2
	}
	cfg := storm.Config{
		Targets:     splitTargets(*targets),
		Workers:     *workers,
		Duration:    *duration,
		Routing:     *routing,
		Corpus:      corpus,
		Registry:    reg,
		TraceSample: *traceSample,
		Tracer:      tracer,
		Tenants:     tenants,
		SLO: slo.Config{
			AvailabilityTarget: max(*sloAvail, 0),
			LatencyTarget:      max(*sloLatency, 0),
			LatencyThreshold:   *sloThreshold,
		},
	}
	lg.Info("starting sweep",
		"targets", len(cfg.Targets), "workers", cfg.Workers,
		"corpus", len(corpus), "endpoint", *endpoint,
		"steps", len(rates), "step_duration", duration.String(),
		"trace_sample", *traceSample)

	reports, err := storm.Sweep(ctx, cfg, rates)
	if err != nil && len(reports) == 0 {
		return olog.Fail(lg, "sweep failed", "error", err.Error())
	}
	if err != nil {
		lg.Warn("sweep interrupted", "completed_steps", len(reports), "error", err.Error())
	}

	fmt.Fprint(stdout, storm.Table(reports))
	printVerdicts(stdout, reports)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, reports); err != nil {
			return olog.Fail(lg, "writing JSON report failed", "error", err.Error())
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = storm.WriteMergedTrace(f, tracer, cfg.Targets, cfg.Client)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return olog.Fail(lg, "writing merged trace failed", "error", err.Error())
		}
		lg.Info("merged trace written", "path", *traceOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return olog.Fail(lg, "writing metrics failed", "error", err.Error())
		}
	}

	// A run that completed nothing is a failed run, whatever the table says.
	var completed uint64
	for _, r := range reports {
		completed += r.Completed
	}
	if completed == 0 {
		return olog.Fail(lg, "no requests completed")
	}
	return 0
}

// printVerdicts appends one SLO line per graded step to the table, plus
// one line per tenant in multi-tenant runs.
func printVerdicts(stdout *os.File, reports []*storm.Report) {
	for i, r := range reports {
		if r.SLO == nil || len(r.SLO.Windows) == 0 {
			continue
		}
		w := r.SLO.Windows[0]
		fmt.Fprintf(stdout,
			"slo step %d: verdict=%s availability=%.5f (burn %.2f) latency_compliance=%.5f (burn %.2f) traced=%d\n",
			i+1, r.SLO.Verdict, w.Availability, w.AvailabilityBurn,
			w.LatencyCompliance, w.LatencyBurn, r.Traced)
		names := make([]string, 0, len(r.Tenants))
		for name := range r.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tr := r.Tenants[name]
			if tr.SLO == nil || len(tr.SLO.Windows) == 0 {
				continue
			}
			tw := tr.SLO.Windows[0]
			fmt.Fprintf(stdout,
				"slo step %d tenant %s: verdict=%s availability=%.5f latency_compliance=%.5f completed=%d shed=%d shed_rate=%.3f\n",
				i+1, name, tr.SLO.Verdict, tw.Availability, tw.LatencyCompliance,
				tr.Completed, tr.Shed+tr.Dropped, tr.ShedRate)
		}
	}
}

// parseTenants builds the synthetic tenant set for -tenants/-tenant-weights:
// n tenants named t0..tn-1, weights from the comma list (all 1 when empty,
// exactly n positive values otherwise).
func parseTenants(n int, weights string) ([]storm.TenantLoad, error) {
	if n <= 0 {
		if weights != "" {
			return nil, fmt.Errorf("-tenant-weights requires -tenants > 0")
		}
		return nil, nil
	}
	out := make([]storm.TenantLoad, n)
	for i := range out {
		out[i] = storm.TenantLoad{Name: fmt.Sprintf("t%d", i), Weight: 1}
	}
	if weights == "" {
		return out, nil
	}
	parts := strings.Split(weights, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-tenant-weights has %d values, -tenants is %d", len(parts), n)
	}
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad tenant weight %q (want a positive number)", p)
		}
		out[i].Weight = w
	}
	return out, nil
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	return out
}

// parseRates parses -rps: "0" (closed loop), a single rate, or
// "lo:hi:steps" for a linear sweep, endpoints included.
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 1:
		r, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad -rps %q", s)
		}
		return []float64{r}, nil
	case 3:
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || lo <= 0 || hi < lo || steps < 2 {
			return nil, fmt.Errorf("bad -rps sweep %q (want lo:hi:steps, lo>0, hi≥lo, steps≥2)", s)
		}
		rates := make([]float64, steps)
		for i := range rates {
			rates[i] = lo + (hi-lo)*float64(i)/float64(steps-1)
		}
		return rates, nil
	default:
		return nil, fmt.Errorf("bad -rps %q (want 0, a rate, or lo:hi:steps)", s)
	}
}

// writeJSON writes the report list as one JSON document.
func writeJSON(path string, stdout *os.File, reports []*storm.Report) error {
	var enc *json.Encoder
	if path == "-" {
		enc = json.NewEncoder(stdout)
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
