// Command lognic-bench regenerates the data behind every result figure of
// the paper's evaluation (§4) and prints each as an aligned table — the
// same rows and series the paper plots. With no arguments it runs all
// fourteen figures; otherwise it runs the listed figure ids (fig5, fig6,
// fig7, fig9..fig19). It also prints the optimizer-suggested
// configurations the paper quotes as anchors (Figure 9 saturation cores,
// Figure 15 credits, Figure 18 parallel degrees).
//
// Usage:
//
//	lognic-bench [-scale f] [-seed n] [-parallel n] [-format text|csv|md] [fig5 fig9 ...]
//	lognic-bench -summary [-scale f] [-seed n] [-parallel n]
//
// -summary prints the paper-vs-reproduction comparison table recorded in
// EXPERIMENTS.md (regenerates every figure; takes a few minutes at full
// scale).
//
// Observability: every run ends with a one-line JSON run summary (wall
// time, sweep points, workers, peak heap from runtime/metrics) on stderr,
// or in the file named by -run-summary. -metrics writes the accumulated
// sweep and simulator metrics in the Prometheus text format; -trace
// samples packet spans into a Chrome trace_event file; -pprof serves
// /debug/pprof, live /metrics and /runtime while figures regenerate.
// None of these change figure output — observability consumes no
// simulator randomness.
//
// -parallel N bounds the sweep engine's worker pool: every figure fans its
// points and simulator replications out over N workers (default
// GOMAXPROCS). Output is byte-identical at any worker count — each
// replication's RNG stream is derived by hashing (base seed, figure,
// point, replication), so -parallel 1 and -parallel 64 print the same
// tables for the same -seed. -seed 0 is a valid seed, distinct from the
// default -seed 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"time"

	"lognic/internal/cli"
	"lognic/internal/experiments"
	"lognic/internal/obs"
	"lognic/internal/obs/olog"
	"lognic/internal/report"
)

// lg is the process logger; every error surfaces through it as a
// structured record, and fatal paths exit via olog.Fatal.
var lg = olog.Discard()

// runSummary is the end-of-run JSON record: enough to spot a regressed or
// runaway benchmark run from logs alone.
type runSummary struct {
	WallSeconds  float64  `json:"wall_seconds"`
	Figures      []string `json:"figures"`
	SweepPoints  float64  `json:"sweep_points"`
	Workers      int      `json:"workers"`
	Scale        float64  `json:"scale"`
	Seed         int64    `json:"seed"`
	PeakHeapByte float64  `json:"peak_heap_bytes"`
	Failed       bool     `json:"failed,omitempty"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "simulated-duration multiplier (smaller = faster, noisier)")
	seed := flag.Int64("seed", 1, "simulator random seed (0 is a valid seed)")
	format := flag.String("format", "text", "output format: text, csv or md")
	summary := flag.Bool("summary", false, "print the paper-vs-reproduction summary table")
	parallel := flag.Int("parallel", 0, "sweep worker count per figure (0 = GOMAXPROCS); results are identical at any worker count")
	shards := flag.Int("shards", 0, "event-engine shards per replication (0/1 = serial; results are identical at any count)")
	metricsOut := flag.String("metrics", "", "write accumulated metrics (Prometheus text format) to this file")
	traceOut := flag.String("trace", "", "sample packet spans into this Chrome trace_event file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /metrics and /runtime on this address while running")
	summaryOut := flag.String("run-summary", "", "write the final JSON run summary to this file instead of stderr")
	logOpts := olog.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg = mustLogger(logOpts)

	// The registry is always on: it feeds the run summary's sweep-point
	// count, and -metrics/-pprof expose it. Attaching it never changes
	// figure output.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	if *pprofAddr != "" {
		ln, err := cli.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			olog.Fatal(lg, "debug server failed", olog.KeyComponent, "bench", "error", err.Error())
		}
		defer ln.Close()
		lg.Info("debug server up", olog.KeyComponent, "bench", "addr", "http://"+ln.Addr().String()+"/")
	}

	opts := experiments.Options{
		Scale: *scale, Seed: *seed, SeedSet: true, Workers: *parallel,
		Metrics: reg, Trace: tracer, Shards: *shards,
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	sum := runSummary{Workers: workers, Scale: *scale, Seed: *seed}
	finish := func(failed bool) {
		sum.WallSeconds = time.Since(start).Seconds()
		if heap := cli.HeapBytes(); heap > sum.PeakHeapByte {
			sum.PeakHeapByte = heap
		}
		sum.SweepPoints = sumGauge(reg, "lognic_sweep_points_done")
		if *metricsOut != "" {
			if err := writeFile(*metricsOut, reg.WritePrometheus); err != nil {
				lg.Error("writing metrics failed", olog.KeyComponent, "bench", "error", err.Error())
				failed = true
			}
		}
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(w io.Writer) error {
				return tracer.WriteChromeTrace(w, "lognic-bench")
			}); err != nil {
				lg.Error("writing trace failed", olog.KeyComponent, "bench", "error", err.Error())
				failed = true
			}
		}
		// Failed is recorded after the output writes so a failed -metrics or
		// -trace write is visible in the summary, not just the exit code.
		sum.Failed = failed
		emitSummary(sum, *summaryOut)
		if failed {
			os.Exit(1)
		}
	}

	if *summary {
		rows, err := report.Summary(opts)
		if err != nil {
			lg.Error("summary failed", olog.KeyComponent, "bench", "error", err.Error())
			finish(true)
		}
		fmt.Print(report.SummaryMarkdown(rows))
		sum.Figures = []string{"summary"}
		finish(false)
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, g := range experiments.All() {
			ids = append(ids, g.ID)
		}
	}
	type outcome struct {
		fig     experiments.Figure
		err     error
		elapsed time.Duration
	}
	// Figures run one after another; the parallelism lives inside each
	// figure's sweep, which keeps the pool bounded by -parallel instead
	// of multiplying it by the number of figures.
	results := make([]outcome, len(ids))
	for i := range ids {
		g, err := experiments.ByID(ids[i])
		if err != nil {
			results[i].err = err
			continue
		}
		start := time.Now()
		fig, err := g.Run(opts)
		results[i] = outcome{fig: fig, err: err, elapsed: time.Since(start)}
		if heap := cli.HeapBytes(); heap > sum.PeakHeapByte {
			sum.PeakHeapByte = heap
		}
	}
	sum.Figures = ids

	failed := false
	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			lg.Error("figure failed", olog.KeyComponent, "bench", "figure", id, "error", res.err.Error())
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Print(report.CSV(res.fig))
		case "md":
			fmt.Println(report.Markdown(res.fig))
		default:
			fmt.Printf("%s  (%.1fs)\n%s\n", id, res.elapsed.Seconds(), res.fig.Format())
			printAnchors(id)
		}
	}
	finish(failed)
}

// sumGauge totals a gauge family across its label sets (the sweep engine
// keeps one lognic_sweep_points_done series per figure).
func sumGauge(reg *obs.Registry, name string) float64 {
	var total float64
	for _, s := range reg.Gather() {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// writeFile renders into path, creating or truncating it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitSummary writes the JSON run summary to path, or stderr when path is
// empty. Summary emission failing never masks the run's own exit status,
// so errors here are only reported.
func emitSummary(sum runSummary, path string) {
	out, err := json.Marshal(sum)
	if err != nil {
		lg.Error("run summary failed", olog.KeyComponent, "bench", "error", err.Error())
		return
	}
	out = append(out, '\n')
	if path == "" {
		os.Stderr.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		lg.Error("run summary failed", olog.KeyComponent, "bench", "error", err.Error())
	}
}

// printAnchors emits the optimizer-suggested configurations associated
// with a figure, when the paper quotes them.
func printAnchors(id string) {
	switch id {
	case "fig9":
		sat, err := experiments.Fig9SaturationCores()
		if err != nil {
			lg.Warn("fig9 anchors failed", olog.KeyComponent, "bench", "error", err.Error())
			return
		}
		fmt.Printf("# model-derived saturation parallelism (paper: md5=9 kasumi=8 hfa=11):\n")
		printIntMap(sat)
	case "fig15":
		credits, err := experiments.Fig15SuggestedCredits()
		if err != nil {
			lg.Warn("fig15 anchors failed", olog.KeyComponent, "bench", "error", err.Error())
			return
		}
		fmt.Printf("# LogNIC-suggested minimal credits (paper: 5/4/4/4):\n")
		printIntMap(credits)
	case "fig18", "fig19":
		lanes, err := experiments.Fig18SuggestedLanes()
		if err != nil {
			lg.Warn("fig18 anchors failed", olog.KeyComponent, "bench", "error", err.Error())
			return
		}
		fmt.Printf("# LogNIC-suggested IP4 parallel degrees (paper: 6 and 4):\n")
		printIntMap(lanes)
	}
}

func printIntMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("#   %-28s %d\n", k, m[k])
	}
	fmt.Println()
}

// mustLogger builds the stderr logger from -log-level/-log-format; bad
// values are a usage error.
func mustLogger(opts *olog.Options) *slog.Logger {
	l, err := opts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lognic-bench:", err)
		os.Exit(2)
	}
	return l
}
