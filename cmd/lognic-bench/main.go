// Command lognic-bench regenerates the data behind every result figure of
// the paper's evaluation (§4) and prints each as an aligned table — the
// same rows and series the paper plots. With no arguments it runs all
// fourteen figures; otherwise it runs the listed figure ids (fig5, fig6,
// fig7, fig9..fig19). It also prints the optimizer-suggested
// configurations the paper quotes as anchors (Figure 9 saturation cores,
// Figure 15 credits, Figure 18 parallel degrees).
//
// Usage:
//
//	lognic-bench [-scale f] [-seed n] [-parallel n] [-format text|csv|md] [fig5 fig9 ...]
//	lognic-bench -summary [-scale f] [-seed n] [-parallel n]
//
// -summary prints the paper-vs-reproduction comparison table recorded in
// EXPERIMENTS.md (regenerates every figure; takes a few minutes at full
// scale).
//
// -parallel N bounds the sweep engine's worker pool: every figure fans its
// points and simulator replications out over N workers (default
// GOMAXPROCS). Output is byte-identical at any worker count — each
// replication's RNG stream is derived by hashing (base seed, figure,
// point, replication), so -parallel 1 and -parallel 64 print the same
// tables for the same -seed. -seed 0 is a valid seed, distinct from the
// default -seed 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"lognic/internal/experiments"
	"lognic/internal/report"
)

func main() {
	scale := flag.Float64("scale", 1.0, "simulated-duration multiplier (smaller = faster, noisier)")
	seed := flag.Int64("seed", 1, "simulator random seed (0 is a valid seed)")
	format := flag.String("format", "text", "output format: text, csv or md")
	summary := flag.Bool("summary", false, "print the paper-vs-reproduction summary table")
	parallel := flag.Int("parallel", 0, "sweep worker count per figure (0 = GOMAXPROCS); results are identical at any worker count")
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Seed: *seed, SeedSet: true, Workers: *parallel}
	if *summary {
		rows, err := report.Summary(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(report.SummaryMarkdown(rows))
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, g := range experiments.All() {
			ids = append(ids, g.ID)
		}
	}
	type outcome struct {
		fig     experiments.Figure
		err     error
		elapsed time.Duration
	}
	// Figures run one after another; the parallelism lives inside each
	// figure's sweep, which keeps the pool bounded by -parallel instead
	// of multiplying it by the number of figures.
	results := make([]outcome, len(ids))
	for i := range ids {
		g, err := experiments.ByID(ids[i])
		if err != nil {
			results[i].err = err
			continue
		}
		start := time.Now()
		fig, err := g.Run(opts)
		results[i] = outcome{fig: fig, err: err, elapsed: time.Since(start)}
	}

	failed := false
	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, res.err)
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Print(report.CSV(res.fig))
		case "md":
			fmt.Println(report.Markdown(res.fig))
		default:
			fmt.Printf("%s  (%.1fs)\n%s\n", id, res.elapsed.Seconds(), res.fig.Format())
			printAnchors(id)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printAnchors emits the optimizer-suggested configurations associated
// with a figure, when the paper quotes them.
func printAnchors(id string) {
	switch id {
	case "fig9":
		sat, err := experiments.Fig9SaturationCores()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig9 anchors: %v\n", err)
			return
		}
		fmt.Printf("# model-derived saturation parallelism (paper: md5=9 kasumi=8 hfa=11):\n")
		printIntMap(sat)
	case "fig15":
		credits, err := experiments.Fig15SuggestedCredits()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig15 anchors: %v\n", err)
			return
		}
		fmt.Printf("# LogNIC-suggested minimal credits (paper: 5/4/4/4):\n")
		printIntMap(credits)
	case "fig18", "fig19":
		lanes, err := experiments.Fig18SuggestedLanes()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig18 anchors: %v\n", err)
			return
		}
		fmt.Printf("# LogNIC-suggested IP4 parallel degrees (paper: 6 and 4):\n")
		printIntMap(lanes)
	}
}

func printIntMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("#   %-28s %d\n", k, m[k])
	}
	fmt.Println()
}
