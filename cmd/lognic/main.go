// Command lognic evaluates a LogNIC model described in a JSON spec file
// (see internal/spec for the format): it prints the estimated attainable
// throughput with the full constraint list (Equation 4), the average
// latency with its per-path breakdown (Equation 8), and the queue
// drop-rate estimate.
//
// Usage:
//
//	lognic [-json] [-sweep lo:hi:steps] model.json
//	lognic -optimize latency|throughput|goodput -knob v.parallelism=1..16 [-knob ...] model.json
//	lognic faults [-json] [-sim] [-duration s] [-seed n] model.json scenario.json
//	lognic trace [-out trace.json] [-metrics file] [-duration s] [-seed n] model.json
//	lognic serve [-addr host:port] [-workers n] [-queue n] [-cache n] [-jobs-dir path] [-pprof]
//
// With -sweep, the ingress bandwidth is swept across the given range
// (accepts unit strings, e.g. -sweep 1Gbps:25Gbps:10) and one row per
// operating point is printed — the latency-vs-throughput curves of the
// paper's Figure 6. With -optimize, the model's optimizer mode searches
// the named integer knobs (a vertex's parallelism degree D or queue
// capacity N) for the configuration that best meets the goal.
//
// The faults subcommand compares the model healthy and under a fault
// scenario (a JSON file naming lost engines and degraded links; see
// internal/spec.Scenario): degraded-mode capacity, bottleneck and latency
// side by side, optionally cross-checked by faulted simulation with -sim.
//
// The trace subcommand runs one traced simulation: it writes every
// packet's span timeline (vertex visits with queue-wait, service and
// transfer phases) as Chrome trace_event JSON — load it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing — and prints the
// bottleneck-attribution table cross-checking the analytical model
// against the measured run.
//
// The serve subcommand starts lognic-serve, the HTTP/JSON evaluation
// daemon, including its crash-safe async job API (with -jobs-dir,
// accepted jobs survive kill -9 and interrupted simulations resume from
// checkpoints). See cmd/lognic-serve, internal/serve and internal/jobs.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"lognic/internal/cli"
	"lognic/internal/obs/olog"
)

type knobList []string

func (k *knobList) String() string     { return fmt.Sprint(*k) }
func (k *knobList) Set(v string) error { *k = append(*k, v); return nil }

// lg is the process logger; every fatal path exits through fatal() so
// errors come out as structured records on one code path.
var lg = olog.Discard()

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "faults" || os.Args[1] == "trace" || os.Args[1] == "serve") {
		os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
	}
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	sweep := flag.String("sweep", "", "sweep ingress bandwidth: lo:hi:steps (e.g. 1Gbps:25Gbps:10)")
	optimize := flag.String("optimize", "", "optimizer mode goal: latency, throughput or goodput")
	mixOut := flag.Bool("mix", false, "evaluate the spec's traffic mix (Extension #2)")
	var knobs knobList
	flag.Var(&knobs, "knob", "optimizer knob vertex.param=lo..hi (repeatable; param: parallelism|queue)")
	logOpts := olog.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg = mustLogger(logOpts)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lognic [-json] [-sweep lo:hi:steps] model.json")
		os.Exit(2)
	}
	if *mixOut {
		f, err := cli.LoadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := cli.RunMix(os.Stdout, f, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	m, err := cli.LoadModel(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *optimize != "" {
		if err := cli.RunOptimize(os.Stdout, m, *optimize, knobs, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *sweep != "" {
		if err := cli.RunSweep(os.Stdout, m, *sweep, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if err := cli.RunPoint(os.Stdout, m, *jsonOut); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	olog.Fatal(lg, "fatal error", olog.KeyComponent, "lognic", "error", err.Error())
}

// mustLogger builds the stderr logger from -log-level/-log-format; bad
// values are a usage error.
func mustLogger(opts *olog.Options) *slog.Logger {
	l, err := opts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lognic:", err)
		os.Exit(2)
	}
	return l
}
