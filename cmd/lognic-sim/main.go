// Command lognic-sim runs the packet-level discrete-event simulator on a
// model described in a JSON spec file and prints measured throughput,
// latency percentiles, drop rate, and per-vertex utilization — the
// "measured" counterpart to cmd/lognic's analytical estimate, useful for
// validating a model against its simulated execution.
//
// Usage:
//
//	lognic-sim [-duration s] [-seed n] [-det] [-json] [-metrics file] [-trace file] [-pprof addr] model.json
//
// -metrics writes the run's counters, gauges and latency histogram to a
// file in the Prometheus text format; -trace writes the packet-span
// timeline as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing); -pprof serves net/http/pprof, the live /metrics
// endpoint and a runtime/metrics snapshot (/runtime) on the given address
// for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"lognic/internal/cli"
	"lognic/internal/obs"
)

func main() {
	duration := flag.Float64("duration", 0.2, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	det := flag.Bool("det", false, "deterministic service times (mean instead of exponential)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	metricsOut := flag.String("metrics", "", "write run metrics (Prometheus text format) to this file")
	traceOut := flag.String("trace", "", "write packet spans (Chrome trace_event JSON) to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /metrics and /runtime on this address (e.g. localhost:6060)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lognic-sim [-duration s] [-seed n] [-det] [-json] [-metrics file] [-trace file] [-pprof addr] model.json")
		os.Exit(2)
	}
	m, err := cli.LoadModel(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	if *pprofAddr != "" {
		ln, err := cli.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "lognic-sim: debug server on http://%s/\n", ln.Addr())
	}
	err = cli.RunSim(os.Stdout, m, cli.SimOptions{
		Duration:      *duration,
		Seed:          *seed,
		Deterministic: *det,
		JSON:          *jsonOut,
		MetricsOut:    *metricsOut,
		TraceOut:      *traceOut,
		Registry:      reg,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lognic-sim:", err)
	os.Exit(1)
}
