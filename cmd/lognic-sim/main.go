// Command lognic-sim runs the packet-level discrete-event simulator on a
// model described in a JSON spec file and prints measured throughput,
// latency percentiles, drop rate, and per-vertex utilization — the
// "measured" counterpart to cmd/lognic's analytical estimate, useful for
// validating a model against its simulated execution.
//
// Usage:
//
//	lognic-sim [-duration s] [-seed n] [-det] [-json] [-metrics file] [-trace file] [-pprof addr] model.json
//
// -metrics writes the run's counters, gauges and latency histogram to a
// file in the Prometheus text format; -trace writes the packet-span
// timeline as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing); -pprof serves net/http/pprof, the live /metrics
// endpoint and a runtime/metrics snapshot (/runtime) on the given address
// for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"lognic/internal/cli"
	"lognic/internal/obs"
	"lognic/internal/obs/olog"
)

// lg is the process logger; fatal() is the single structured exit path.
var lg = olog.Discard()

func main() {
	duration := flag.Float64("duration", 0.2, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	det := flag.Bool("det", false, "deterministic service times (mean instead of exponential)")
	shards := flag.Int("shards", 0, "event-engine shards (0/1 = serial; results are identical at any count)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	metricsOut := flag.String("metrics", "", "write run metrics (Prometheus text format) to this file")
	traceOut := flag.String("trace", "", "write packet spans (Chrome trace_event JSON) to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /metrics and /runtime on this address (e.g. localhost:6060)")
	logOpts := olog.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg = mustLogger(logOpts)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lognic-sim [-duration s] [-seed n] [-det] [-shards n] [-json] [-metrics file] [-trace file] [-pprof addr] model.json")
		os.Exit(2)
	}
	m, err := cli.LoadModel(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	if *pprofAddr != "" {
		ln, err := cli.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		lg.Info("debug server up", olog.KeyComponent, "sim", "addr", "http://"+ln.Addr().String()+"/")
	}
	err = cli.RunSim(os.Stdout, m, cli.SimOptions{
		Duration:      *duration,
		Seed:          *seed,
		Deterministic: *det,
		JSON:          *jsonOut,
		MetricsOut:    *metricsOut,
		TraceOut:      *traceOut,
		Registry:      reg,
		Shards:        *shards,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	olog.Fatal(lg, "fatal error", olog.KeyComponent, "sim", "error", err.Error())
}

// mustLogger builds the stderr logger from -log-level/-log-format; bad
// values are a usage error.
func mustLogger(opts *olog.Options) *slog.Logger {
	l, err := opts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lognic-sim:", err)
		os.Exit(2)
	}
	return l
}
