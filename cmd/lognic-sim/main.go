// Command lognic-sim runs the packet-level discrete-event simulator on a
// model described in a JSON spec file and prints measured throughput,
// latency percentiles, drop rate, and per-vertex utilization — the
// "measured" counterpart to cmd/lognic's analytical estimate, useful for
// validating a model against its simulated execution.
//
// Usage:
//
//	lognic-sim [-duration s] [-seed n] [-det] [-json] model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"lognic/internal/cli"
)

func main() {
	duration := flag.Float64("duration", 0.2, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	det := flag.Bool("det", false, "deterministic service times (mean instead of exponential)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lognic-sim [-duration s] [-seed n] [-det] [-json] model.json")
		os.Exit(2)
	}
	m, err := cli.LoadModel(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	err = cli.RunSim(os.Stdout, m, cli.SimOptions{
		Duration:      *duration,
		Seed:          *seed,
		Deterministic: *det,
		JSON:          *jsonOut,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lognic-sim:", err)
	os.Exit(1)
}
