// Command lognic-serve runs the LogNIC model-evaluation daemon: an
// HTTP/JSON API over the analytical estimator, the knob optimizer and the
// discrete-event simulator, with a canonical-hash result cache, a bounded
// worker pool that sheds load with 429 + Retry-After, per-request
// timeouts, graceful SIGTERM drain, and a crash-safe async job API whose
// accepted jobs survive kill -9 via a journaled, checkpointed durability
// directory. See internal/serve, internal/jobs and docs/SERVE.md.
//
// Usage:
//
//	lognic-serve [-addr host:port] [-workers n] [-queue n] [-cache n]
//	             [-cache-bytes n] [-cache-warm-from file|url]
//	             [-timeout d] [-drain d] [-max-body n] [-max-sim-events n] [-pprof]
//	             [-jobs-dir path] [-jobs-workers n] [-job-attempts n]
//	             [-job-backoff d] [-job-backoff-max d] [-job-checkpoint-every n]
//
// Endpoints:
//
//	POST   /v1/estimate  {"spec": <model spec>}
//	POST   /v1/optimize  {"spec": ..., "goal": "latency|throughput|goodput", "knobs": [...]}
//	POST   /v1/simulate  {"spec": ..., "duration": seconds, "seed": n, ...}
//	POST   /v1/jobs      {"kind": "estimate|optimize|simulate", "request": <endpoint body>}
//	GET    /v1/jobs/{id} poll an async job (DELETE cancels, GET /v1/jobs lists)
//	GET    /v1/cache/snapshot  stream the result cache for peer warm-start
//	GET    /healthz      liveness
//	GET    /readyz       readiness (503 during journal replay and drain)
//	GET    /metrics      Prometheus text (add ?format=json for JSON)
package main

import (
	"os"

	"lognic/internal/serve"
)

func main() {
	os.Exit(serve.Main(os.Args[1:], os.Stdout, os.Stderr))
}
