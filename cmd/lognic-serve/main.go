// Command lognic-serve runs the LogNIC model-evaluation daemon: an
// HTTP/JSON API over the analytical estimator, the knob optimizer and the
// discrete-event simulator, with a canonical-hash result cache, a bounded
// worker pool that sheds load with 429 + Retry-After, per-request
// timeouts, and graceful SIGTERM drain. See internal/serve and
// docs/SERVE.md.
//
// Usage:
//
//	lognic-serve [-addr host:port] [-workers n] [-queue n] [-cache n]
//	             [-timeout d] [-drain d] [-max-body n] [-max-sim-events n] [-pprof]
//
// Endpoints:
//
//	POST /v1/estimate  {"spec": <model spec>}
//	POST /v1/optimize  {"spec": ..., "goal": "latency|throughput|goodput", "knobs": [...]}
//	POST /v1/simulate  {"spec": ..., "duration": seconds, "seed": n, ...}
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text (add ?format=json for JSON)
package main

import (
	"os"

	"lognic/internal/serve"
)

func main() {
	os.Exit(serve.Main(os.Args[1:], os.Stdout, os.Stderr))
}
