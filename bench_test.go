package lognic

// This file is the benchmark harness deliverable: one testing.B benchmark
// per result figure of the paper (regenerating its data through
// internal/experiments), the ablation benches DESIGN.md calls out, and
// microbenchmarks of the model's hot paths. Figure benches report a
// headline value from the regenerated data as a custom metric so `go test
// -bench` output doubles as a compact reproduction summary; run
// cmd/lognic-bench for the full tables.

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"lognic/internal/apps"
	"lognic/internal/baselines"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/experiments"
	"lognic/internal/numopt"
	"lognic/internal/nvme"
	"lognic/internal/obs"
	"lognic/internal/optimizer"
	"lognic/internal/queueing"
	"lognic/internal/sim"
	"lognic/internal/simtest"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// benchOpts keeps the simulator-backed figures affordable under -bench.
// Workers is left at the default (GOMAXPROCS), so every figure bench runs
// on the parallel sweep engine; BenchmarkSweepSpeedup records the
// serial-vs-parallel win explicitly.
var benchOpts = experiments.Options{Scale: 0.1, Seed: 1}

// runFigure regenerates a figure b.N times and returns the last result.
func runFigure(b *testing.B, id string) experiments.Figure {
	b.Helper()
	// Figure regenerations are event-engine bound: allocs/op is the
	// engine's headline cost, so report it without requiring -benchmem.
	b.ReportAllocs()
	gen, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err = gen.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// lastY returns the final point of a named series.
func lastY(b *testing.B, fig experiments.Figure, series string) float64 {
	b.Helper()
	for _, s := range fig.Series {
		if s.Name == series {
			return s.Points[len(s.Points)-1].Y
		}
	}
	b.Fatalf("%s: series %q missing", fig.ID, series)
	return 0
}

func BenchmarkFig05AcceleratorGranularity(b *testing.B) {
	fig := runFigure(b, "fig5")
	// Headline: CRC throughput fraction retained at 16KB (paper: 13.6%).
	crc16k := lastY(b, fig, "crc")
	crcMax := fig.Series[0].Points[0].Y
	b.ReportMetric(crc16k/crcMax*100, "%crc@16KB")
}

func BenchmarkFig06NVMeOFLatency(b *testing.B) {
	fig := runFigure(b, "fig6")
	// Headline: mean |model−measured| latency error over the 4KB-RRD sweep.
	var meas, model []float64
	for _, s := range fig.Series {
		switch s.Name {
		case "4KB-RRD-Measured":
			for _, p := range s.Points {
				meas = append(meas, p.Y)
			}
		case "4KB-RRD-LogNIC":
			for _, p := range s.Points {
				model = append(model, p.Y)
			}
		}
	}
	sum := 0.0
	for i := range meas {
		sum += math.Abs(model[i]-meas[i]) / meas[i]
	}
	b.ReportMetric(sum/float64(len(meas))*100, "%err")
}

func BenchmarkFig07ReadRatio(b *testing.B) {
	fig := runFigure(b, "fig7")
	// Headline: model underprediction at the 50/50 mix (paper: ~14.6%).
	var measured, model float64
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.X == 50 {
				switch s.Name {
				case "RD-Measured", "WR-Measured":
					measured += p.Y
				case "RD-LogNIC", "WR-LogNIC":
					model += p.Y
				}
			}
		}
	}
	b.ReportMetric((1-model/measured)*100, "%underpred@50")
}

func BenchmarkFig09ParallelismSweep(b *testing.B) {
	fig := runFigure(b, "fig9")
	b.ReportMetric(lastY(b, fig, "md5-Measured"), "MOPS-md5@16c")
	sat, err := experiments.Fig9SaturationCores()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sat["md5"]), "cores-md5")
	b.ReportMetric(float64(sat["kasumi"]), "cores-kasumi")
	b.ReportMetric(float64(sat["hfa"]), "cores-hfa")
}

func BenchmarkFig10PacketSizeSweep(b *testing.B) {
	fig := runFigure(b, "fig10")
	b.ReportMetric(lastY(b, fig, "crc"), "Gbps-crc@MTU")
	b.ReportMetric(lastY(b, fig, "hfa"), "Gbps-hfa@MTU")
}

func BenchmarkFig11MicroserviceThroughput(b *testing.B) {
	fig := runFigure(b, "fig11")
	f12, err := experiments.Fig12(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	g := experiments.GainsFromFigures(fig, f12)
	b.ReportMetric(g.ThroughputVsRR*100, "%gain-vs-RR")
	b.ReportMetric(g.ThroughputVsEqual*100, "%gain-vs-Eq")
}

func BenchmarkFig12MicroserviceLatency(b *testing.B) {
	fig := runFigure(b, "fig12")
	f11, err := experiments.Fig11(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	g := experiments.GainsFromFigures(f11, fig)
	b.ReportMetric(g.LatencyVsRR*100, "%saving-vs-RR")
	b.ReportMetric(g.LatencyVsEqual*100, "%saving-vs-Eq")
}

func BenchmarkFig13PlacementThroughput(b *testing.B) {
	fig := runFigure(b, "fig13")
	arm := lastY(b, fig, "ARM-only")
	opt := lastY(b, fig, "LogNIC-opt")
	b.ReportMetric((opt/arm-1)*100, "%gain-vs-ARM@MTU")
}

func BenchmarkFig14PlacementLatency(b *testing.B) {
	fig := runFigure(b, "fig14")
	arm := lastY(b, fig, "ARM-only")
	opt := lastY(b, fig, "LogNIC-opt")
	b.ReportMetric((1-opt/arm)*100, "%saving-vs-ARM@MTU")
}

func BenchmarkFig15CreditSizing(b *testing.B) {
	fig := runFigure(b, "fig15")
	b.ReportMetric(lastY(b, fig, "TP1(64/512)"), "Gbps-TP1@8credits")
	credits, err := experiments.Fig15SuggestedCredits()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(credits["TP1(64/512)"]), "credits-TP1")
}

func BenchmarkFig16SteeringLatency(b *testing.B) {
	fig := runFigure(b, "fig16")
	// Headline: LogNIC latency reduction vs the worst static split at MTU.
	logn := lastY(b, fig, "LogNIC")
	worst := lastY(b, fig, "10/70")
	b.ReportMetric((1-logn/worst)*100, "%saving-vs-10/70@MTU")
}

func BenchmarkFig17SteeringThroughput(b *testing.B) {
	fig := runFigure(b, "fig17")
	logn := lastY(b, fig, "LogNIC")
	worst := lastY(b, fig, "10/70")
	b.ReportMetric((logn/worst-1)*100, "%gain-vs-10/70@MTU")
}

func BenchmarkFig18ParallelLatency(b *testing.B) {
	fig := runFigure(b, "fig18")
	lanes, err := experiments.Fig18SuggestedLanes()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(lanes["Traffic Profile 1"]), "lanes-tp1")
	b.ReportMetric(float64(lanes["Traffic Profile 2"]), "lanes-tp2")
	b.ReportMetric(lastY(b, fig, "Traffic Profile 1"), "us-tp1@8lanes")
}

func BenchmarkFig19ParallelThroughput(b *testing.B) {
	fig := runFigure(b, "fig19")
	b.ReportMetric(lastY(b, fig, "Traffic Profile 1"), "Gbps-tp1@8lanes")
}

// BenchmarkSweepSpeedup regenerates the most simulator-heavy inline
// figure (fig9: 48 replications) serially and on the full worker pool,
// and reports the wall-clock speedup plus the worker count — the parallel
// sweep engine's headline metric. Both runs produce byte-identical figure
// data (asserted here too, cheaply, via Format), so the speedup is free
// of statistical caveats. On a single-core machine the ratio is ~1.
func BenchmarkSweepSpeedup(b *testing.B) {
	gen, err := experiments.ByID("fig9")
	if err != nil {
		b.Fatal(err)
	}
	serialOpts := benchOpts
	serialOpts.Workers = 1
	parallelOpts := benchOpts
	parallelOpts.Workers = runtime.GOMAXPROCS(0)
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		figSerial, err := gen.Run(serialOpts)
		if err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		t1 := time.Now()
		figParallel, err := gen.Run(parallelOpts)
		if err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t1)
		if figSerial.Format() != figParallel.Format() {
			b.Fatal("worker count changed figure output")
		}
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "x-speedup")
	b.ReportMetric(float64(parallelOpts.Workers), "workers")
	// s-serial is the reference wall time the CI trace-overhead smoke
	// compares BenchmarkTracingDisabled against (budget: +5%).
	b.ReportMetric(serial.Seconds()/float64(b.N), "s-serial")
}

// benchFig9Serial regenerates fig9 on one worker — the same workload
// BenchmarkSweepSpeedup times serially — under the given observability
// options.
func benchFig9Serial(b *testing.B, o experiments.Options) {
	b.Helper()
	gen, err := experiments.ByID("fig9")
	if err != nil {
		b.Fatal(err)
	}
	o.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingDisabled measures the observability hooks at their
// default setting: wired through the sweep engine and the simulator hot
// paths but with no registry or tracer attached. CI compares its ns/op to
// BenchmarkSweepSpeedup's s-serial metric and fails the build if the
// disabled-instrumentation path costs more than 5% — the budget the
// nil-guarded span/metric call sites are designed to meet.
func BenchmarkTracingDisabled(b *testing.B) {
	benchFig9Serial(b, benchOpts)
}

// BenchmarkTracingEnabled is the same workload with a live registry and
// span tracer, for eyeballing the enabled-path cost (not budgeted).
func BenchmarkTracingEnabled(b *testing.B) {
	o := benchOpts
	o.Metrics = obs.NewRegistry()
	o.Trace = obs.NewTracer(0)
	benchFig9Serial(b, o)
}

// BenchmarkAblationQueueModel compares the paper's folded M/M/1/N vertex
// queueing against the M/M/c/K extension and the simulator's ground truth
// for a wide (8-engine) IP at 80% utilization — the design choice behind
// core.QueueModel.
func BenchmarkAblationQueueModel(b *testing.B) {
	build := func(qm core.QueueModel) core.Model {
		g, err := core.NewBuilder("ablate").
			AddIngress("in").
			AddVertex(core.Vertex{
				Name: "ip", Kind: core.KindIP, Throughput: 2e9,
				Parallelism: 8, QueueCapacity: 64, QueueModel: qm,
			}).
			AddEgress("out").
			Connect("in", "ip", 1).
			Connect("ip", "out", 1).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		return core.Model{
			Graph:   g,
			Traffic: core.Traffic{IngressBW: 1.6e9, Granularity: 1500},
		}
	}
	var mm1n, mmck, measured float64
	for i := 0; i < b.N; i++ {
		lr1, err := build(core.QueueMM1N).Latency()
		if err != nil {
			b.Fatal(err)
		}
		lrC, err := build(core.QueueMMcK).Latency()
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:    build(core.QueueMMcK).Graph,
			Profile:  traffic.Fixed("mtu", unit.Bandwidth(1.6e9), 1500),
			Seed:     1,
			Duration: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		mm1n, mmck, measured = lr1.Attainable, lrC.Attainable, res.MeanLatency
	}
	b.ReportMetric(mm1n*1e6, "us-mm1n")
	b.ReportMetric(mmck*1e6, "us-mmck")
	b.ReportMetric(measured*1e6, "us-sim")
}

// BenchmarkAblationLogCA contrasts LogNIC's packet-centric estimate with
// the real LogCA baseline (internal/baselines) on the BlueField-2 NF
// chain. LogCA answers the offload question (break-even granularity,
// asymptotic speedup) but is load-blind: its per-packet time is one number
// regardless of the offered rate, so it misses the queueing that dominates
// LogNIC's estimate as the chain approaches saturation.
func BenchmarkAblationLogCA(b *testing.B) {
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()
	place := apps.AcceleratorOnly(chain)
	// A LogCA instance for the PE (crypto) offload on this device.
	pe := chain[4]
	eng, err := d.Engine("crypto")
	if err != nil {
		b.Fatal(err)
	}
	logca := baselines.LogCA{
		Compute:      pe.ARMPerByte,
		Acceleration: pe.ARMPerByte / eng.PerByte,
		Overhead:     eng.TransferOverhead + eng.PacketBase,
		Latency:      1 / d.InterfaceBW.BytesPerSecond(),
	}
	var lognicLat, logcaLat, breakEven float64
	for i := 0; i < b.N; i++ {
		m, err := apps.NFChainModel(d, chain, place, 1500, 15e9)
		if err != nil {
			b.Fatal(err)
		}
		lr, err := m.Latency()
		if err != nil {
			b.Fatal(err)
		}
		lognicLat = lr.Attainable
		logcaLat = logca.AcceleratedTime(1500)
		g1, ok := logca.BreakEven()
		if !ok {
			b.Fatal("crypto offload should break even")
		}
		breakEven = g1
	}
	b.ReportMetric(lognicLat*1e6, "us-lognic@15G")
	b.ReportMetric(logcaLat*1e6, "us-logca-anyload")
	b.ReportMetric(breakEven, "B-logca-breakeven")
}

// BenchmarkAblationOptimizer compares the Nelder–Mead/penalty solver
// against exhaustive grid search on the Figure 16 steering space: same
// optimum, far fewer model evaluations.
func BenchmarkAblationOptimizer(b *testing.B) {
	d := devices.PANICPrototype()
	build := func(x float64) (core.Model, error) {
		return apps.PANICParallelized(d, 512, 12e9, 0.2, x, 0.8-x, 64)
	}
	objective := func(x float64) float64 {
		m, err := build(x)
		if err != nil {
			return math.Inf(1)
		}
		v, err := optimizer.Score(m, optimizer.MinimizeLatency)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	var golden, grid float64
	var gridEvals int
	for i := 0; i < b.N; i++ {
		x, err := optimizer.SteerTraffic(build, 0.05, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		golden = x
		// Exhaustive reference at 0.1% resolution.
		best, bestF := 0.0, math.Inf(1)
		gridEvals = 0
		for g := 0.05; g <= 0.75; g += 0.001 {
			gridEvals++
			if f := objective(g); f < bestF {
				best, bestF = g, f
			}
		}
		grid = best
	}
	b.ReportMetric(golden*100, "%x-goldensection")
	b.ReportMetric(grid*100, "%x-grid")
	b.ReportMetric(float64(gridEvals), "grid-evals")
}

// BenchmarkSimEngine measures the discrete-event simulator's raw event
// throughput on a three-stage pipeline.
func BenchmarkSimEngine(b *testing.B) {
	g, err := core.NewBuilder("perf").
		AddIngress("in").
		AddIP("a", 4e9, 4, 64).
		AddIP("c", 4e9, 4, 64).
		AddEgress("out").
		Connect("in", "a", 1).
		Connect("a", "c", 1).
		Connect("c", "out", 1).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	var packets int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Graph:    g,
			Profile:  traffic.Fixed("mtu", unit.Bandwidth(3e9), 1500),
			Seed:     int64(i + 1),
			Duration: 0.02,
		})
		if err != nil {
			b.Fatal(err)
		}
		packets = res.DeliveredPackets
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds()*float64(b.N), "pkts/s")
}

// BenchmarkShardedEngine measures the sharded event engine (ISSUE 9) on
// the 64-tenant microservice mesh at 1/2/4/8 shards, plus the two
// heaviest paper figures regenerated with sharded replications. Every
// sharded run's Result digest is compared against the serial run's —
// a drift fails the benchmark, so perf numbers can never be quoted from
// a run that broke the determinism contract. Speedup is hardware-bound:
// shards are goroutines, so wall-clock gains need GOMAXPROCS ≥ shards
// (cmd/lognic-bench's BENCH_SHARDED.json records the host core count
// next to the numbers for exactly that reason).
func BenchmarkShardedEngine(b *testing.B) {
	cfg, err := sim.MeshConfig(64, 0.7, 1, 2e-4)
	if err != nil {
		b.Fatal(err)
	}
	serialRes, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	want := simtest.ResultDigest(serialRes)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mesh64/shards=%d", shards), func(b *testing.B) {
			c := cfg
			c.Shards = shards
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				if got := simtest.ResultDigest(res); got != want {
					b.Fatalf("shards=%d result digest %s, serial %s", shards, got, want)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		})
	}
	for _, fig := range []string{"fig6", "fig11"} {
		b.Run(fig+"/shards=2", func(b *testing.B) {
			gen, err := experiments.ByID(fig)
			if err != nil {
				b.Fatal(err)
			}
			serialFig, err := gen.Run(benchOpts)
			if err != nil {
				b.Fatal(err)
			}
			o := benchOpts
			o.Shards = 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shardedFig, err := gen.Run(o)
				if err != nil {
					b.Fatal(err)
				}
				if simtest.FigureDigest(shardedFig) != simtest.FigureDigest(serialFig) {
					b.Fatalf("%s: sharded replications changed figure output", fig)
				}
			}
		})
	}
}

// BenchmarkThroughputModel measures one Equation 1–4 evaluation.
func BenchmarkThroughputModel(b *testing.B) {
	d := devices.StingrayPS1100R()
	m, err := apps.NVMeoF(apps.NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(false), Kind: nvme.RandRead,
		IOBytes: 4096, OfferedBW: 1e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Throughput(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyModel measures one Equation 5–8+12 evaluation.
func BenchmarkLatencyModel(b *testing.B) {
	d := devices.StingrayPS1100R()
	m, err := apps.NVMeoF(apps.NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(false), Kind: nvme.RandRead,
		IOBytes: 4096, OfferedBW: 1e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Latency(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMM1NClosedForm measures the Equation 12 closed form.
func BenchmarkMM1NClosedForm(b *testing.B) {
	q := queueing.MM1N{Lambda: 0.8e6, Mu: 1e6, Capacity: 64}
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += q.QueueingDelayClosedForm()
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkGraphBuild measures execution-graph construction+validation.
func BenchmarkGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.NewBuilder("bench").
			AddIngress("in").
			AddIP("a", 1e9, 2, 32).
			AddIP("b", 2e9, 4, 32).
			AddIP("c", 3e9, 8, 32).
			AddEgress("out").
			Connect("in", "a", 1).
			Connect("a", "b", 1).
			Connect("b", "c", 1).
			Connect("c", "out", 1).
			Build()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerTuneParallelism measures one §4.4 parallelism search.
func BenchmarkOptimizerTuneParallelism(b *testing.B) {
	d := devices.LiquidIO2CN2360()
	chain := apps.E3Workloads()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.TuneParallelism(d, chain, d.Cores, 1e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNumoptNelderMead measures the simplex solver on Rosenbrock.
func BenchmarkNumoptNelderMead(b *testing.B) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		if _, err := numopt.NelderMead(f, []float64{-1.2, 1}, numopt.NelderMeadOptions{MaxIter: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
