module lognic

go 1.22
