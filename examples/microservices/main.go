// Microservice parallelism tuning (paper case study #3, §4.4): the LogNIC
// optimizer picks the NIC-core allocation for an E3 service chain, and the
// simulator compares it against E3's round-robin run-to-completion
// dispatch and an equal partition of the cores. The tail of the example
// exercises E3's orchestrator: when the offered load outgrows the NIC,
// stages migrate to host cores across PCIe.
package main

import (
	"fmt"
	"log"

	"lognic"
	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
)

func main() {
	d := devices.LiquidIO2CN2360()

	for _, chain := range apps.E3Workloads() {
		opt, err := optimizer.TuneParallelism(d, chain, d.Cores, 1e9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d stages, %.1fus/request) ==\n",
			chain.Name, len(chain.Stages), chain.TotalCost()*1e6)
		fmt.Printf("  LogNIC-Opt core allocation: %v\n", opt.Cores)

		// Offer 80%% of the optimized configuration's capacity to all
		// three schemes and measure.
		ref, err := apps.MicroserviceModel(d, chain, opt, 1e9)
		if err != nil {
			log.Fatal(err)
		}
		sat, err := ref.SaturationThroughput()
		if err != nil {
			log.Fatal(err)
		}
		offered := 0.8 * sat.Attainable

		for _, alloc := range []apps.Allocation{
			apps.RoundRobin(),
			apps.EqualPartition(chain, d.Cores),
			opt,
		} {
			m, err := apps.MicroserviceModel(d, chain, alloc, offered)
			if err != nil {
				log.Fatal(err)
			}
			res, err := lognic.Simulate(lognic.SimConfig{
				Graph:    m.Graph,
				Hardware: m.Hardware,
				Profile: lognic.FixedProfile(chain.Name,
					lognic.Bandwidth(offered), lognic.Size(chain.RequestBytes)),
				Seed:     1,
				Duration: 0.1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %8.3f MRPS   avg latency %s\n",
				alloc.Name, res.Throughput/chain.RequestBytes/1e6,
				lognic.Duration(res.MeanLatency))
		}
		fmt.Println()
	}

	// E3's orchestrator under overload: offer twice what the NIC can
	// serve for the heaviest chain and let the planner migrate stages.
	chain := apps.E3Workloads()[2] // RTA-SF
	host := apps.DefaultHost()
	opt, err := optimizer.TuneParallelism(d, chain, d.Cores, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := apps.MicroserviceModel(d, chain, opt, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	sat, err := ref.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	offered := 1.5 * sat.Attainable
	onHost, cores, migrated, err := apps.PlanMigration(d, chain, host, offered, 1.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== orchestrator: %s at 1.5x NIC capacity ==\n", chain.Name)
	for i, st := range chain.Stages {
		where := "NIC"
		if onHost[i] {
			where = "host"
		}
		fmt.Printf("  %-10s -> %s\n", st.Name, where)
	}
	msat, err := migrated.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  NIC cores for resident stages: %v\n", cores)
	fmt.Printf("  capacity: %.3f MRPS (offered %.3f MRPS)\n",
		msat.Attainable/chain.RequestBytes/1e6, offered/chain.RequestBytes/1e6)
}
