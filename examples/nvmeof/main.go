// NVMe-oF target (paper case study #2, §4.3): the target side of
// NVMe-over-RDMA on a Stingray JBOF, with the SSD treated as an opaque IP.
// The example characterizes the drive by sweeping load against the
// simulator, fits a saturation curve, feeds the fitted capacity back into
// the model, and compares model latency against simulation for three I/O
// patterns — plus the Figure 7 lesson: a fragmented drive's GC couples
// reads and writes in a way the static model underpredicts.
package main

import (
	"fmt"
	"log"

	"lognic"
	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/nvme"
)

func main() {
	d := devices.StingrayPS1100R()
	drive := nvme.StingrayDrive(false)

	fmt.Println("== characterize then predict: 4KB random reads ==")
	ssd, err := nvme.New(drive)
	if err != nil {
		log.Fatal(err)
	}
	capacity := ssd.Capacity(nvme.RandRead, 4096)
	fmt.Printf("  drive capacity (hidden from the model): %s\n", lognic.Bandwidth(capacity))

	for _, frac := range []float64{0.3, 0.6, 0.9} {
		cfg := apps.NVMeoFConfig{
			Device: d, Drive: drive, Kind: nvme.RandRead,
			IOBytes: 4096, OfferedBW: frac * capacity,
			SSDCapacityOverride: capacity,
		}
		m, err := apps.NVMeoF(cfg)
		if err != nil {
			log.Fatal(err)
		}
		lr, err := m.Latency()
		if err != nil {
			log.Fatal(err)
		}
		timers, err := apps.NVMeoFServiceTimers(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := lognic.Simulate(lognic.SimConfig{
			Graph:       m.Graph,
			Hardware:    m.Hardware,
			Profile:     lognic.FixedProfile("4KB-RRD", lognic.Bandwidth(cfg.OfferedBW), 4096),
			Seed:        1,
			Duration:    0.3,
			ServiceTime: timers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% load: model %-10s measured %-10s (err %+.1f%%)\n",
			frac*100, lognic.Duration(lr.Attainable), lognic.Duration(res.MeanLatency),
			100*(lr.Attainable-res.MeanLatency)/res.MeanLatency)
	}

	fmt.Println("\n== fragmented drive, 70/30 read/write mix (Figure 7) ==")
	fragged := nvme.StingrayDrive(true)
	cfg := apps.NVMeoFConfig{Device: d, Drive: fragged, IOBytes: 4096, OfferedBW: 100e9}
	model, err := apps.NVMeoFMixedModel(cfg, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := model.Throughput()
	if err != nil {
		log.Fatal(err)
	}
	cfgSim := cfg
	cfgSim.Kind = nvme.RandRead
	cfgSim.OfferedBW = 1.2 * tr.Attainable
	m, err := apps.NVMeoF(cfgSim)
	if err != nil {
		log.Fatal(err)
	}
	timers, err := apps.NVMeoFMixServiceTimers(cfgSim, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lognic.Simulate(lognic.SimConfig{
		Graph:       m.Graph,
		Hardware:    m.Hardware,
		Profile:     lognic.FixedProfile("mix", lognic.Bandwidth(cfgSim.OfferedBW), 4096),
		Seed:        1,
		Duration:    0.3,
		ServiceTime: timers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  static model:  %s aggregate\n", lognic.Bandwidth(tr.Attainable))
	fmt.Printf("  measured:      %s aggregate\n", lognic.Bandwidth(res.Throughput))
	fmt.Printf("  the model underpredicts by %.1f%% — GC dynamics are invisible to it\n",
		100*(1-tr.Attainable/res.Throughput))
}
