// Quickstart: build a three-vertex execution graph, estimate throughput
// and latency with the LogNIC model, identify the bottleneck, and validate
// the estimate against the packet-level simulator.
package main

import (
	"fmt"
	"log"

	"lognic"
)

func main() {
	// A UDP echo server offloaded to a SmartNIC: packets enter at the RX
	// port, are processed by a group of 8 NIC cores able to sustain
	// 2 GB/s in aggregate (queue of 64 requests), and leave at TX. The
	// cores are 8 independent engines, so the M/M/c/K queue extension is
	// the faithful choice; the paper's default folds parallelism into a
	// single M/M/1/N server (compare both below).
	g, err := lognic.NewBuilder("udp-echo").
		AddIngress("rx").
		AddVertex(lognic.Vertex{
			Name:          "nic-cores",
			Kind:          lognic.KindIP,
			Throughput:    2e9,
			Parallelism:   8,
			QueueCapacity: 64,
			QueueModel:    lognic.QueueMMcK,
		}).
		AddEgress("tx").
		Connect("rx", "nic-cores", 1).
		Connect("nic-cores", "tx", 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	m := lognic.Model{
		Hardware: lognic.Hardware{InterfaceBW: lognic.Gbps(50).BytesPerSecond()},
		Graph:    g,
		Traffic: lognic.Traffic{
			IngressBW:   lognic.Gbps(12).BytesPerSecond(),
			Granularity: 1500, // MTU packets
		},
	}

	// Estimation mode: throughput (Equation 4) and latency (Equation 8).
	est, err := m.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered:    %s\n", lognic.Bandwidth(m.Traffic.IngressBW))
	fmt.Printf("throughput: %s\n", lognic.Bandwidth(est.Throughput.Attainable))
	fmt.Printf("bottleneck: %s\n", est.Throughput.Bottleneck)
	fmt.Printf("latency:    %s\n", lognic.Duration(est.Latency.Attainable))

	// What would it take to saturate? Raise the offer and look again.
	m.Traffic.IngressBW = lognic.Gbps(25).BytesPerSecond()
	sat, err := m.Throughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat 25Gbps offered the bottleneck moves to: %s\n", sat.Bottleneck)

	// Validation mode: replay the same setup on the discrete-event
	// simulator and compare.
	res, err := lognic.Simulate(lognic.SimConfig{
		Graph:    g,
		Hardware: m.Hardware,
		Profile:  lognic.FixedProfile("mtu", lognic.Gbps(12), 1500),
		Seed:     1,
		Duration: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Traffic.IngressBW = lognic.Gbps(12).BytesPerSecond()
	lr, err := m.Latency()
	if err != nil {
		log.Fatal(err)
	}
	// For contrast: the paper's folded M/M/1/N treatment of the same IP.
	v, _ := g.Vertex("nic-cores")
	v.QueueModel = lognic.QueueMM1N
	gFolded, err := g.WithVertex(v)
	if err != nil {
		log.Fatal(err)
	}
	mFolded := m
	mFolded.Graph = gFolded
	lrFolded, err := mFolded.Latency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator check at 12Gbps:\n")
	fmt.Printf("  measured             throughput %s, latency %s\n",
		lognic.Bandwidth(res.Throughput), lognic.Duration(res.MeanLatency))
	fmt.Printf("  model (M/M/c/K)      throughput %s, latency %s\n",
		lognic.Bandwidth(est.Throughput.Attainable), lognic.Duration(lr.Attainable))
	fmt.Printf("  model (paper M/M/1/N) latency %s — folding 8 engines into one\n",
		lognic.Duration(lrFolded.Attainable))
	fmt.Println("  server overstates queueing for wide IPs; see the queue-model ablation.")
}
