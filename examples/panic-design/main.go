// Hardware design-space exploration (paper case study #5, §4.6): use the
// LogNIC model to provision the PANIC prototype — size compute-unit
// request queues (credits), steer traffic across heterogeneous units, and
// pick the minimal execution parallelism of a scaled-out unit.
package main

import (
	"fmt"
	"log"

	"lognic/internal/apps"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/experiments"
	"lognic/internal/optimizer"
)

func main() {
	d := devices.PANICPrototype()

	fmt.Println("== scenario 1: minimal credits per traffic profile ==")
	credits, err := experiments.Fig15SuggestedCredits()
	if err != nil {
		log.Fatal(err)
	}
	for _, tp := range []string{
		"TP1(64/512)", "TP2(64/512/1024)",
		"TP3(64/256/512/1500)", "TP4(64/128/256/1024/1500)",
	} {
		fmt.Printf("  %-28s %d credits (PANIC default: %d)\n", tp, credits[tp], d.DefaultCredits)
	}

	fmt.Println("\n== scenario 2: steering across units with capability 4:7:3 ==")
	// A1 is pinned at 20% of traffic; find the A2 share X minimizing
	// average latency at 512B packets.
	offered := 12e9
	x, err := optimizer.SteerTraffic(func(x float64) (core.Model, error) {
		return apps.PANICParallelized(d, 512, offered, 0.2, x, 0.8-x, 64)
	}, 0.05, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  suggested A2 share: %.1f%% (capability-proportional would be %.1f%%)\n",
		x*100, 0.8*7.0/10*100)
	for _, static := range []float64{0.10, 0.40, x} {
		m, err := apps.PANICParallelized(d, 512, offered, 0.2, static, 0.8-static, 64)
		if err != nil {
			log.Fatal(err)
		}
		lr, err := m.Latency()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  A2=%4.1f%%: model latency %8.3fus\n", static*100, lr.Attainable*1e6)
	}

	fmt.Println("\n== scenario 3: minimal parallel degree of the scaled-out unit ==")
	lanes, err := experiments.Fig18SuggestedLanes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  50/50 split: %d lanes;  80/20 split: %d lanes (paper: 6 and 4)\n",
		lanes["Traffic Profile 1"], lanes["Traffic Profile 2"])
}
