// Off-path SmartNICs and traffic-profile effects (paper §2.1 and §2.4):
// this example models a BlueField-2-style off-path card whose NIC switch
// bypasses host-bound flows around the SoC, then uses the simulator to
// show two effects the analytical model's Poisson assumption abstracts
// away — burstiness inflating latency at identical average load, and
// load-aware (join-shortest-queue) steering versus the model's static
// split.
package main

import (
	"fmt"
	"log"

	"lognic"
	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func main() {
	d := devices.BlueField2DPU()

	fmt.Println("== off-path bypass: host share vs device capacity ==")
	for _, hostShare := range []float64{0, 0.5, 0.9} {
		m, err := apps.OffPath(apps.OffPathConfig{
			Device: d, HostShare: hostShare, NICServiceTime: 2e-6,
			PacketBytes: 1500, OfferedBW: 5e9,
		})
		if err != nil {
			log.Fatal(err)
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% bypassed: capacity %-10s bottleneck %s\n",
			hostShare*100, lognic.Bandwidth(sat.Attainable), sat.Bottleneck.Kind)
	}

	fmt.Println("\n== burst degree at identical average load (60% of an IP) ==")
	g, err := lognic.NewBuilder("burst").
		AddIngress("in").
		AddIP("ip", 1e9, 1, 256).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	for _, burst := range []float64{1, 4, 16} {
		prof := traffic.Fixed("b", unit.Bandwidth(0.6e9), 1000)
		prof.BurstDegree = burst
		res, err := lognic.Simulate(lognic.SimConfig{
			Graph: g, Profile: prof, Seed: 1, Duration: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  burst %4.0f: mean %-10s p99 %s\n",
			burst, lognic.Duration(res.MeanLatency), lognic.Duration(res.P99))
	}

	fmt.Println("\n== static capability split vs load-aware JSQ steering ==")
	steer, err := lognic.NewBuilder("steer").
		AddIngress("in").
		AddIP("sched", 100e9, 1, 0).
		AddIP("fast", 2e9, 1, 64).
		AddIP("slow", 1e9, 1, 64).
		AddEgress("out").
		AddEdge(lognic.Edge{From: "in", To: "sched", Delta: 1}).
		AddEdge(lognic.Edge{From: "sched", To: "fast", Delta: 2.0 / 3}).
		AddEdge(lognic.Edge{From: "sched", To: "slow", Delta: 1.0 / 3}).
		AddEdge(lognic.Edge{From: "fast", To: "out", Delta: 2.0 / 3}).
		AddEdge(lognic.Edge{From: "slow", To: "out", Delta: 1.0 / 3}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		policy map[string]sim.RoutePolicy
	}{
		{"static 2:1 (model's split)", nil},
		{"join-shortest-queue", map[string]sim.RoutePolicy{"sched": sim.RouteJSQ}},
	} {
		res, err := lognic.Simulate(lognic.SimConfig{
			Graph:       steer,
			Profile:     traffic.Fixed("s", unit.Bandwidth(2.4e9), 1000),
			Seed:        2,
			Duration:    0.3,
			RoutePolicy: mode.policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s mean %-10s p99 %s\n",
			mode.name, lognic.Duration(res.MeanLatency), lognic.Duration(res.P99))
	}
	fmt.Println("\nThe capability-proportional static split — exactly what the LogNIC")
	fmt.Println("optimizer suggests — lands close to the dynamic scheduler without")
	fmt.Println("any run-time queue feedback.")
}
