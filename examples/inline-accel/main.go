// Inline acceleration (paper case study #1, §4.2): a bump-in-the-wire UDP
// echo server on the LiquidIO-II CN2360 that pushes every packet through a
// crypto or pattern-matching engine. The example shows how the model
// locates the data-path bottleneck as the NIC-core parallelism, the
// accelerator rate, and the interconnect ceilings trade places.
package main

import (
	"fmt"
	"log"

	"lognic"
	"lognic/internal/apps"
	"lognic/internal/devices"
)

func main() {
	d := devices.LiquidIO2CN2360()

	fmt.Println("== MD5 inline acceleration at MTU, sweeping NIC cores ==")
	for _, cores := range []int{2, 6, 9, 16} {
		m, err := apps.InlineAccel(apps.InlineAccelConfig{
			Device: d, Accel: "md5", Cores: cores, PacketBytes: 1500,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Throughput()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d cores: %8.3f Mpps  bottleneck %s\n",
			cores, rep.Attainable/1500/1e6, rep.Bottleneck)
	}

	fmt.Println("\n== CRC with growing data-access granularity (1KB packets) ==")
	for _, chunk := range []float64{512, 2048, 4096, 16384} {
		m, err := apps.InlineAccel(apps.InlineAccelConfig{
			Device: d, Accel: "crc", Cores: d.Cores,
			PacketBytes: 1024, ChunkBytes: chunk,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.0fB fetches: %8.3f MOPS  bottleneck %s\n",
			chunk, rep.Attainable/1024/1e6, rep.Bottleneck)
	}

	fmt.Println("\n== model vs simulator, HFA at line rate, 11 cores ==")
	m, err := apps.InlineAccel(apps.InlineAccelConfig{
		Device: d, Accel: "hfa", Cores: 11, PacketBytes: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := m.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	res, err := lognic.Simulate(lognic.SimConfig{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile:  lognic.FixedProfile("mtu", lognic.Bandwidth(m.Traffic.IngressBW), 1500),
		Seed:     1,
		Duration: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model:    %s, latency %s\n",
		lognic.Bandwidth(est.Throughput.Attainable), lognic.Duration(est.Latency.Attainable))
	fmt.Printf("  measured: %s, latency %s\n",
		lognic.Bandwidth(res.Throughput), lognic.Duration(res.MeanLatency))
}
