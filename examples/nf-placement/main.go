// NF placement (paper case study #4, §4.5): place a FW→LB→DPI→NAT→PE
// middlebox chain across the BlueField-2's ARM cores and hardware engines.
// The optimizer enumerates every feasible placement per packet size and
// picks the fastest — offloading the per-byte-heavy functions for large
// packets while avoiding costly off-chip transfers for small ones.
package main

import (
	"fmt"
	"log"
	"sort"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
	"lognic/internal/unit"
)

func main() {
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()

	describe := func(p apps.Placement) string {
		var names []string
		for _, f := range chain {
			if p[f.Name] {
				names = append(names, f.Name)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			return "(all on ARM)"
		}
		return fmt.Sprintf("offload %v", names)
	}

	capacity := func(p apps.Placement, size float64) float64 {
		m, err := apps.NFChainModel(d, chain, p, size, d.LineRate.BytesPerSecond())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			log.Fatal(err)
		}
		return rep.Attainable
	}

	fmt.Println("pkt(B)   ARM-only   Accel-only  LogNIC-opt   chosen placement")
	for _, size := range []float64{64, 256, 512, 1500} {
		opt, err := optimizer.PlaceNFs(d, chain, size, d.LineRate.BytesPerSecond())
		if err != nil {
			log.Fatal(err)
		}
		arm := capacity(apps.ARMOnly(chain), size)
		acc := capacity(apps.AcceleratorOnly(chain), size)
		best := capacity(opt, size)
		fmt.Printf("%-8.0f %-10.6s %-11.6s %-12.6s %s\n",
			size,
			unit.Bandwidth(arm).String(),
			unit.Bandwidth(acc).String(),
			unit.Bandwidth(best).String(),
			describe(opt))
	}

	fmt.Println("\nWhy the answer changes with packet size: each engine charges a")
	fmt.Println("fixed ARM-side transfer overhead per packet, while its speedup is")
	fmt.Println("per byte. Small packets pay the overhead without the win.")
}
