// Fault tolerance: what happens to a SmartNIC offload when hardware
// degrades mid-flight? This walkthrough builds a crypto-offload chain,
// then answers three questions the healthy-hardware model cannot:
//
//  1. Transient faults — engines dying and recovering, a link flapping,
//     a firmware stall — injected into a simulation run as timed events,
//     with a retry policy re-presenting dropped requests.
//  2. Steady-state degradation — the analytical model re-parameterized
//     by lognic.Degrade predicts the degraded capacity and bottleneck,
//     cross-checked against a simulation with the equivalent permanent
//     faults.
//  3. Runaway protection — the hardened run harness (context
//     cancellation, event budget, progress watchdog) turning a
//     pathological configuration into a typed error instead of a hang.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"lognic"
	"lognic/internal/unit"
)

// buildModel is an inline-crypto chain: packets enter at rx, ARM cores
// classify (8 engines, 12 GB/s aggregate), a crypto block transforms
// (4 lanes, 6 GB/s aggregate), and packets leave at tx. Ingress DMA
// crosses the SoC interface; the crypto handoff crosses memory.
func buildModel() (lognic.Model, error) {
	g, err := lognic.NewBuilder("crypto-offload").
		AddIngress("rx").
		AddVertex(lognic.Vertex{
			Name: "arm", Kind: lognic.KindIP,
			Throughput: 12e9, Parallelism: 8, QueueCapacity: 64,
		}).
		AddVertex(lognic.Vertex{
			Name: "crypto", Kind: lognic.KindIP,
			Throughput: 6e9, Parallelism: 4, QueueCapacity: 64,
		}).
		AddEgress("tx").
		AddEdge(lognic.Edge{From: "rx", To: "arm", Delta: 1, Alpha: 1}).
		AddEdge(lognic.Edge{From: "arm", To: "crypto", Delta: 1, Beta: 1}).
		AddEdge(lognic.Edge{From: "crypto", To: "tx", Delta: 1}).
		Build()
	if err != nil {
		return lognic.Model{}, err
	}
	return lognic.Model{
		Hardware: lognic.Hardware{
			InterfaceBW: lognic.Gbps(200).BytesPerSecond(),
			MemoryBW:    lognic.Gbps(200).BytesPerSecond(),
		},
		Graph:   g,
		Traffic: lognic.Traffic{IngressBW: 4e9, Granularity: 1500},
	}, nil
}

func main() {
	m, err := buildModel()
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Transient faults in a simulation run -----------------------
	//
	// A 100 ms run at 4 GB/s offered. At t=20ms the crypto block loses 3
	// of its 4 lanes (capacity 1.5 GB/s — now the overloaded bottleneck)
	// and recovers at t=50ms; at t=60ms the memory path briefly runs at
	// one tenth bandwidth. A retry policy on the crypto queue re-presents
	// rejected handoffs instead of dropping them outright.
	res, err := lognic.Simulate(lognic.SimConfig{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile:  lognic.FixedProfile("steady", unit.Bandwidth(m.Traffic.IngressBW), 1500),
		Seed:     7,
		Duration: 0.1,
		Faults: lognic.FaultSchedule{
			{Kind: lognic.EngineDown, Time: 0.020, Vertex: "crypto", Count: 3},
			{Kind: lognic.EngineUp, Time: 0.050, Vertex: "crypto", Count: 3},
			{Kind: lognic.LinkDegrade, Time: 0.060, Link: "memory", Factor: 0.1, Duration: 0.010},
		},
		Retry: map[string]lognic.RetryPolicy{
			"crypto": {MaxRetries: 3, Backoff: 5e-6},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== transient faults (30ms of lost lanes + a 10ms memory brownout)")
	fmt.Printf("delivered:    %s of %s offered\n",
		unit.Bandwidth(res.Throughput), unit.Bandwidth(m.Traffic.IngressBW))
	fmt.Printf("drop rate:    %.4f  (mean latency %s)\n", res.DropRate, unit.Duration(res.MeanLatency))
	fmt.Printf("fault events: engine-down %d, engine-up %d, link-degrade %d (restored %d)\n",
		res.Faults.EngineDownEvents, res.Faults.EngineUpEvents,
		res.Faults.LinkDegradeEvents, res.Faults.LinkRestores)
	fmt.Printf("retries:      %d re-presented, %d dropped after retrying\n",
		res.Faults.Retries, res.Faults.RetryDrops)
	for v, s := range res.Faults.EngineDownTime {
		fmt.Printf("lost capacity: %s %.4g engine-seconds\n", v, s)
	}

	// --- 2. Degraded-mode model vs faulted simulation -------------------
	//
	// The same crypto lane loss as a steady state: fold it into the model
	// with Degrade, then check the prediction against a simulation that
	// starts with the equivalent permanent fault.
	scenario := lognic.Degradation{EnginesDown: map[string]int{"crypto": 3}}
	dm, err := lognic.Degrade(m, scenario)
	if err != nil {
		log.Fatal(err)
	}
	healthySat, err := m.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	sat, err := dm.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	sres, err := lognic.Simulate(lognic.SimConfig{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		// Offer 1.5x the degraded capacity so the run measures the ceiling.
		Profile:  lognic.FixedProfile("sat", unit.Bandwidth(1.5*sat.Attainable), 1500),
		Seed:     7,
		Duration: 0.05,
		Faults:   lognic.PermanentFaults(scenario),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== steady-state degradation (3 of 4 crypto lanes gone)")
	fmt.Printf("healthy capacity:   %s (bottleneck %s)\n",
		unit.Bandwidth(healthySat.Attainable), healthySat.Bottleneck)
	fmt.Printf("degraded predicted: %s (bottleneck %s)\n",
		unit.Bandwidth(sat.Attainable), sat.Bottleneck)
	fmt.Printf("degraded simulated: %s (%.1f%% off prediction)\n",
		unit.Bandwidth(sres.Throughput),
		100*(sres.Throughput-sat.Attainable)/sat.Attainable)

	// --- 3. The hardened run harness ------------------------------------
	//
	// An unbounded-retry policy against a permanently overloaded queue
	// would loop forever; the watchdog and the event budget both convert
	// it into a typed error. A context deadline bounds wall-clock time.
	runaway := lognic.SimConfig{
		Graph:     m.Graph,
		Hardware:  m.Hardware,
		Profile:   lognic.FixedProfile("flood", unit.Bandwidth(40e9), 1500),
		Seed:      7,
		Duration:  10,
		MaxEvents: 2_000_000,
		Faults:    lognic.PermanentFaults(scenario),
		Retry: map[string]lognic.RetryPolicy{
			"crypto": {MaxRetries: 1 << 30, Backoff: 0},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = lognic.SimulateContext(ctx, runaway)
	fmt.Println("\n== hardened harness (unbounded retries, 10s simulated flood)")
	switch {
	case errors.Is(err, lognic.ErrBudgetExceeded):
		fmt.Printf("aborted by event budget: %v\n", err)
	case errors.Is(err, lognic.ErrStalled):
		fmt.Printf("aborted by progress watchdog: %v\n", err)
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("aborted by context deadline: %v\n", err)
	case err == nil:
		log.Fatal("runaway config ran to completion — harness failed")
	default:
		log.Fatal(err)
	}
}
